#include "src/core/usage.hpp"

#include <algorithm>

namespace benchpark::core {

UsageMetrics& UsageMetrics::instance() {
  static UsageMetrics metrics;
  return metrics;
}

UsageEntry& UsageMetrics::touch(const std::string& benchmark) {
  auto& entry = entries_[benchmark];
  entry.benchmark = benchmark;
  entry.last_event = ++clock_;
  return entry;
}

void UsageMetrics::record_setup(const std::string& benchmark) {
  std::scoped_lock lock(mutex_);
  ++touch(benchmark).setups;
}

void UsageMetrics::record_runs(const std::string& benchmark,
                               std::uint64_t count) {
  std::scoped_lock lock(mutex_);
  touch(benchmark).runs += count;
}

void UsageMetrics::record_contribution(const std::string& benchmark) {
  std::scoped_lock lock(mutex_);
  ++touch(benchmark).contributions;
}

UsageEntry UsageMetrics::get(const std::string& benchmark) const {
  std::scoped_lock lock(mutex_);
  auto it = entries_.find(benchmark);
  return it == entries_.end() ? UsageEntry{benchmark} : it->second;
}

std::vector<UsageEntry> UsageMetrics::ranking() const {
  std::scoped_lock lock(mutex_);
  std::vector<UsageEntry> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry);
  std::sort(out.begin(), out.end(),
            [](const UsageEntry& a, const UsageEntry& b) {
              return a.setups + a.runs > b.setups + b.runs;
            });
  return out;
}

support::Table UsageMetrics::to_table() const {
  support::Table table(
      {"benchmark", "setups", "runs", "contributions", "recency"});
  for (const auto& entry : ranking()) {
    table.add_row({entry.benchmark, std::to_string(entry.setups),
                   std::to_string(entry.runs),
                   std::to_string(entry.contributions),
                   std::to_string(entry.last_event)});
  }
  return table;
}

void UsageMetrics::reset() {
  std::scoped_lock lock(mutex_);
  entries_.clear();
  clock_ = 0;
}

}  // namespace benchpark::core
