#include "src/sched/scheduler.hpp"

#include <algorithm>

#include "src/obs/trace.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::sched {

using support::split;
using support::split_ws;
using support::starts_with;
using support::trim;

std::string_view job_state_name(JobState s) {
  switch (s) {
    case JobState::pending: return "PENDING";
    case JobState::running: return "RUNNING";
    case JobState::completed: return "COMPLETED";
    case JobState::failed: return "FAILED";
    case JobState::timeout: return "TIMEOUT";
  }
  return "?";
}

// ------------------------------------------------------------- script parse

namespace {

/// Parse "120:00" (minutes:seconds), "120" (minutes), or "2:00:00".
/// Every component must be non-negative and the total positive: slurm
/// rejects "-t -5:00" at submission, and letting it through here turned
/// into a job with a negative walltime that could never be backfilled
/// sanely.
double parse_time_limit(const std::string& text) {
  auto parts = split(text, ':');
  std::vector<double> values;
  try {
    for (const auto& part : parts) values.push_back(support::parse_double(part));
  } catch (const Error&) {
    throw SchedulerError("bad time limit '" + text + "'");
  }
  for (double v : values) {
    if (v < 0) {
      throw SchedulerError("time limit '" + text +
                           "' has a negative component");
    }
  }
  double seconds = 0.0;
  if (values.size() == 1) {
    seconds = values[0] * 60;
  } else if (values.size() == 2) {
    seconds = values[0] * 60 + values[1];
  } else if (values.size() == 3) {
    seconds = values[0] * 3600 + values[1] * 60 + values[2];
  } else {
    throw SchedulerError("bad time limit '" + text + "'");
  }
  if (seconds <= 0) {
    throw SchedulerError("time limit '" + text + "' must be positive");
  }
  return seconds;
}

void apply_flag(ScriptRequest& req, const std::string& flag,
                const std::string& value, system::SchedulerKind kind) {
  try {
    if (flag == "-N" || flag == "--nodes" || flag == "-nnodes") {
      req.nodes = static_cast<int>(support::parse_int(value));
      if (req.nodes < 1) {
        throw SchedulerError("node count '" + value + "' must be >= 1");
      }
    } else if (flag == "-n" || flag == "--ntasks") {
      req.ranks = static_cast<int>(support::parse_int(value));
      if (req.ranks < 1) {
        throw SchedulerError("rank count '" + value + "' must be >= 1");
      }
    } else if (flag == "-t" || flag == "--time" || flag == "-W") {
      if (kind == system::SchedulerKind::flux &&
          support::ends_with(value, "m")) {
        req.time_limit_seconds =
            support::parse_double(value.substr(0, value.size() - 1)) * 60;
        if (req.time_limit_seconds <= 0) {
          throw SchedulerError("time limit '" + value + "' must be positive");
        }
      } else {
        req.time_limit_seconds = parse_time_limit(value);
      }
    }
    // Unknown flags are tolerated (real schedulers have dozens).
  } catch (const SchedulerError&) {
    throw;
  } catch (const Error&) {
    throw SchedulerError("bad value '" + value + "' for " + flag);
  }
}

}  // namespace

ScriptRequest parse_batch_script(const std::string& script,
                                 system::SchedulerKind kind) {
  std::string sentinel;
  switch (kind) {
    case system::SchedulerKind::slurm: sentinel = "#SBATCH"; break;
    case system::SchedulerKind::lsf: sentinel = "#BSUB"; break;
    case system::SchedulerKind::flux: sentinel = "#flux:"; break;
  }
  ScriptRequest req;
  for (const auto& raw : split(script, '\n')) {
    auto line = trim(raw);
    if (!starts_with(line, sentinel)) continue;
    auto tokens = split_ws(line.substr(sentinel.size()));
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const auto& tok = tokens[i];
      if (!starts_with(tok, "-")) continue;
      // "--time=2:00:00" form.
      auto eq = tok.find('=');
      if (eq != std::string::npos) {
        apply_flag(req, tok.substr(0, eq), tok.substr(eq + 1), kind);
      } else if (i + 1 < tokens.size()) {
        apply_flag(req, tok, tokens[i + 1], kind);
        ++i;
      } else {
        throw SchedulerError("directive flag '" + tok + "' missing a value");
      }
    }
  }
  if (req.nodes < 1 || req.ranks < 1) {
    throw SchedulerError("batch script requests no resources");
  }
  return req;
}

// ------------------------------------------------------------ BatchScheduler

BatchScheduler::BatchScheduler(int total_nodes, Policy policy)
    : total_nodes_(total_nodes), policy_(policy) {
  if (total_nodes < 1) throw SchedulerError("scheduler needs >= 1 node");
}

JobId BatchScheduler::submit(BatchJob job) {
  if (job.nodes < 1) throw SchedulerError("job requests no nodes");
  if (job.nodes > total_nodes_) {
    throw SchedulerError("job '" + job.name + "' requests " +
                         std::to_string(job.nodes) + " nodes; system has " +
                         std::to_string(total_nodes_));
  }
  if (!job.work) throw SchedulerError("job has no work callback");
  std::lock_guard<std::mutex> lock(mu_);
  JobId id = next_id_++;
  JobRecord record;
  record.id = id;
  record.name = job.name;
  record.user = job.user;
  record.nodes = job.nodes;
  record.ranks = job.ranks;
  record.time_limit_seconds = job.time_limit_seconds;
  record.submit_time = now_;
  records_.emplace(id, std::move(record));
  pending_work_.emplace(id, std::move(job));
  queue_.push_back(id);
  return id;
}

void BatchScheduler::run_until_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    try_start_jobs(lock);
    if (!running_.empty()) {
      finish_next_locked();
      continue;
    }
    if (queue_.empty()) return;
    // Nothing running, nothing startable, queue non-empty: impossible
    // (submit validates nodes <= total and every node is free here).
    throw SchedulerError("scheduler wedged with pending jobs");
  }
}

bool BatchScheduler::can_backfill(const JobRecord& candidate) const {
  // EASY backfill: the candidate may start now if it finishes (by its
  // walltime limit) before the earliest time the queue head could start.
  if (queue_.empty()) return true;
  const JobRecord& head = records_.at(queue_.front());
  // Earliest head start: walk running jobs in end-time order until enough
  // nodes free up.
  auto running = running_;
  std::sort(running.begin(), running.end(),
            [](const Running& a, const Running& b) {
              return a.end_time < b.end_time;
            });
  int free_nodes = total_nodes_ - busy_nodes_.load(std::memory_order_relaxed);
  double head_start = now_;
  for (const auto& r : running) {
    if (free_nodes >= head.nodes) break;
    free_nodes += records_.at(r.id).nodes;
    head_start = r.end_time;
  }
  // Candidate must fit now and not delay the head.
  return now_ + candidate.time_limit_seconds <= head_start;
}

void BatchScheduler::try_start_jobs(std::unique_lock<std::mutex>& lock) {
  // start_job drops the lock around the work callback, so concurrent
  // submitters may reshape queue_ under us; every pass re-reads it from
  // scratch and starts at most one job.
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      JobId id = queue_[i];
      const JobRecord& record = records_.at(id);
      int free_nodes =
          total_nodes_ - busy_nodes_.load(std::memory_order_relaxed);
      if (record.nodes > free_nodes) continue;
      bool is_head = (i == 0);
      if (!is_head && policy_ == Policy::fifo) break;
      if (!is_head && policy_ == Policy::backfill &&
          !can_backfill(record)) {
        continue;
      }
      queue_.erase(queue_.begin() + static_cast<long>(i));
      start_job(id, lock);
      progress = true;
      break;
    }
  }
}

void BatchScheduler::start_job(JobId id, std::unique_lock<std::mutex>& lock) {
  BatchJob job = std::move(pending_work_.at(id));
  pending_work_.erase(id);
  std::string name;
  int nodes = 0;
  double started_at = 0;
  double time_limit = 0;
  {
    JobRecord& record = records_.at(id);
    record.state = JobState::running;
    record.start_time = now_;
    name = record.name;
    nodes = record.nodes;
    started_at = now_;
    time_limit = record.time_limit_seconds;
  }
  busy_nodes_.fetch_add(nodes, std::memory_order_relaxed);

  // The work callback is user code: it may throw (an escaping exception
  // used to leave busy_nodes_ inflated forever) and it may run long, so
  // the scheduler lock is released around it — concurrent submitters
  // keep landing jobs while one executes. The "sched.job" fault site
  // (keyed by job name) models flaky nodes; injected latency extends
  // the modeled runtime.
  lock.unlock();
  auto& collector = obs::TraceCollector::global();
  JobResult result;
  double injected_latency = 0.0;
  {
    obs::ScopedSpan span(
        collector, collector.enabled() ? "sched:" + name : std::string(),
        "sched");
    if (span.active()) {
      span.annotate("job_id", std::to_string(id));
      span.annotate("nodes", std::to_string(nodes));
    }
    try {
      injected_latency = support::fault_hit("sched.job", name);
      result = job.work();
    } catch (const std::exception& e) {
      result.success = false;
      result.runtime_seconds = 0.0;
      result.output = std::string("job raised: ") + e.what();
    }
    double modeled =
        std::max(0.0, result.runtime_seconds) + injected_latency;
    if (span.active()) {
      // The job's runtime is scheduler-simulated time, not wall-clock.
      collector.emit_span("sched.runtime", "sched", modeled,
                          {{"job", name},
                           {"injected",
                            support::format_double(injected_latency, 6)}});
    }
  }
  lock.lock();

  double runtime = std::max(0.0, result.runtime_seconds) + injected_latency;
  JobRecord& record = records_.at(id);
  if (runtime > time_limit) {
    record.state = JobState::timeout;
    record.output = result.output + "\nslurmstepd: *** JOB " +
                    std::to_string(id) + " CANCELLED DUE TO TIME LIMIT ***\n";
    runtime = time_limit;
  } else {
    record.state = result.success ? JobState::completed : JobState::failed;
    record.output = result.output;
  }
  running_.push_back({id, started_at + runtime});
}

void BatchScheduler::finish_next_locked() {
  auto it = std::min_element(running_.begin(), running_.end(),
                             [](const Running& a, const Running& b) {
                               return a.end_time < b.end_time;
                             });
  now_ = it->end_time;
  JobRecord& record = records_.at(it->id);
  record.end_time = now_;
  busy_nodes_.fetch_sub(record.nodes, std::memory_order_relaxed);
  makespan_ = std::max(makespan_, now_);
  running_.erase(it);
}

const JobRecord& BatchScheduler::record(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) {
    throw SchedulerError("unknown job id " + std::to_string(id));
  }
  return it->second;
}

std::vector<const JobRecord*> BatchScheduler::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const JobRecord*> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) out.push_back(&record);
  return out;
}

}  // namespace benchpark::sched
