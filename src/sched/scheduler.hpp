// Batch scheduler simulation (Slurm/LSF/Flux-flavored).
//
// Ramble's `batch_submit: sbatch {execute_experiment}` (Figure 12) lands
// experiment scripts on a scheduler; this module provides one. It is a
// discrete-event simulator over virtual time: jobs request nodes and a
// walltime limit, the policy (FIFO or EASY backfill) decides start order,
// and completions come from a work callback that reports how long the job
// "ran" (via the perf model) and what it printed.
// Concurrency contract: submit() may be called from any number of
// threads (the service daemon's dispatch workers all land experiments on
// shared schedulers), concurrently with one driver thread inside
// run_until_idle(); node accounting (busy_nodes_) is atomic and all
// queue/record state sits behind an internal lock. The lock is released
// around each job's work callback, so long-running callbacks never block
// submitters. Virtual time is advanced by the single driver thread;
// concurrent run_until_idle() calls from two threads are not supported.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/system/system.hpp"

namespace benchpark::sched {

using JobId = std::uint64_t;

enum class JobState { pending, running, completed, failed, timeout };

[[nodiscard]] std::string_view job_state_name(JobState s);

/// What a job's work callback returns.
struct JobResult {
  double runtime_seconds = 0.0;
  bool success = true;
  std::string output;  // the job's stdout (FOM lines etc.)
};

/// A job submission.
struct BatchJob {
  std::string name;
  std::string user;
  int nodes = 1;
  int ranks = 1;
  double time_limit_seconds = 3600;
  /// Invoked at (virtual) start time; returns runtime and output.
  std::function<JobResult()> work;
};

/// Resource request parsed from a rendered batch script (Figure 13).
struct ScriptRequest {
  int nodes = 1;
  int ranks = 1;
  std::optional<double> time_limit_seconds;
};

/// Parse #SBATCH/#BSUB/#flux: directives out of a batch script.
/// Throws SchedulerError on malformed directives.
ScriptRequest parse_batch_script(const std::string& script,
                                 system::SchedulerKind kind);

/// Full accounting record for one job.
struct JobRecord {
  JobId id = 0;
  std::string name;
  std::string user;
  int nodes = 1;
  int ranks = 1;
  double time_limit_seconds = 0;
  JobState state = JobState::pending;
  double submit_time = 0;
  double start_time = -1;
  double end_time = -1;
  std::string output;

  [[nodiscard]] double wait_time() const {
    return start_time >= 0 ? start_time - submit_time : -1;
  }
};

enum class Policy { fifo, backfill };

class BatchScheduler {
public:
  BatchScheduler(int total_nodes, Policy policy = Policy::fifo);

  /// Submit at the current virtual time; returns the job id.
  /// Thread-safe: concurrent submitters get distinct ids and consistent
  /// queue state, even while run_until_idle() is executing jobs.
  JobId submit(BatchJob job);

  /// Advance virtual time until every submitted job has finished.
  void run_until_idle();

  /// Stable reference: records are never erased. Fields of a RUNNING
  /// job may still change; read after the scheduler is idle for a
  /// settled snapshot.
  [[nodiscard]] const JobRecord& record(JobId id) const;
  [[nodiscard]] std::vector<const JobRecord*> records() const;
  [[nodiscard]] double now() const {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }
  [[nodiscard]] int total_nodes() const { return total_nodes_; }
  /// Lock-free: safe to poll from work callbacks and other threads.
  [[nodiscard]] int busy_nodes() const {
    return busy_nodes_.load(std::memory_order_relaxed);
  }
  /// Completion time of the last job (virtual seconds since epoch).
  [[nodiscard]] double makespan() const {
    std::lock_guard<std::mutex> lock(mu_);
    return makespan_;
  }

private:
  struct Running {
    JobId id;
    double end_time;
  };

  void try_start_jobs(std::unique_lock<std::mutex>& lock);
  bool can_backfill(const JobRecord& candidate) const;
  void start_job(JobId id, std::unique_lock<std::mutex>& lock);
  void finish_next_locked();

  int total_nodes_;
  Policy policy_;
  mutable std::mutex mu_;
  double now_ = 0;
  double makespan_ = 0;
  std::atomic<int> busy_nodes_{0};
  JobId next_id_ = 1;
  std::map<JobId, JobRecord> records_;
  std::map<JobId, BatchJob> pending_work_;
  std::vector<JobId> queue_;          // pending order
  std::vector<Running> running_;      // sorted by end time on access
};

}  // namespace benchpark::sched
