#include "src/system/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"

namespace benchpark::system {

std::string_view collective_name(Collective c) {
  switch (c) {
    case Collective::bcast: return "MPI_Bcast";
    case Collective::allreduce: return "MPI_Allreduce";
    case Collective::reduce: return "MPI_Reduce";
    case Collective::barrier: return "MPI_Barrier";
    case Collective::allgather: return "MPI_Allgather";
  }
  return "?";
}

PerfModel::PerfModel(const SystemDescription& system)
    : system_(system),
      alpha_s_(system.interconnect.latency_us * 1e-6),
      beta_s_per_byte_(1.0 / (system.interconnect.bandwidth_gbs * 1e9)),
      // Arrival/contention overhead per participating rank. Cloud fabrics
      // (higher base latency) also show proportionally more jitter.
      arrival_s_per_rank_(alpha_s_ * 0.042),
      // Cross-socket traffic pays the NUMA surcharge; single-socket
      // topologies (every pre-existing system) keep a neutral 1.0.
      numa_factor_(system.topology.sockets > 1
                       ? 1.0 + system.topology.numa_penalty
                       : 1.0) {}

double PerfModel::cpu_kernel_seconds(double flops, double bytes,
                                     int ranks_per_node, int threads) const {
  int cores_used = std::max(1, ranks_per_node * std::max(1, threads));
  int cores = std::min(cores_used, system_.cpu.cores_per_node);
  double peak_flops = system_.cpu.peak_gflops() * 1e9 *
                      (static_cast<double>(cores) / system_.cpu.cores_per_node);
  // Memory bandwidth saturates before all cores are busy (~1/4 of them).
  double bw_fraction =
      std::min(1.0, static_cast<double>(cores) /
                        std::max(1, system_.cpu.cores_per_node / 4));
  double bw = system_.cpu.mem_bw_gbs * 1e9 * bw_fraction;
  // Multi-socket nodes: the share of traffic served by the remote socket
  // crosses the inter-socket link and pays the NUMA penalty. Neutral for
  // single-socket systems (no change to their modeled numbers).
  if (system_.topology.sockets > 1) {
    int per_socket =
        std::max(1, system_.cpu.cores_per_node / system_.topology.sockets);
    if (cores > per_socket) {
      double remote_share =
          static_cast<double>(cores - per_socket) / cores;
      bw *= 1.0 - system_.topology.numa_penalty * remote_share;
    }
  }
  double compute_s = flops / peak_flops;
  double memory_s = bytes / bw;
  // Launch/loop overhead keeps tiny kernels from reporting zero.
  return std::max(compute_s, memory_s) + 2e-6;
}

double PerfModel::gpu_kernel_seconds(double flops, double bytes,
                                     int ranks_per_node) const {
  if (!system_.gpu) {
    throw SystemError("system '" + system_.name + "' has no GPUs");
  }
  const GpuModel& gpu = *system_.gpu;
  // One rank drives one GCD/GPU; oversubscription shares the device.
  double share =
      std::min(1.0, static_cast<double>(gpu.per_node) /
                        std::max(1, ranks_per_node));
  double compute_s = flops / (gpu.fp64_tflops * 1e12 * share);
  double memory_s = bytes / (gpu.mem_bw_gbs * 1e9 * share);
  // Kernel-launch latency dominates tiny problems (the reason GPUs lose
  // small-n saxpy, a crossover bench_saxpy exhibits).
  constexpr double kLaunchLatency = 8e-6;
  return std::max(compute_s, memory_s) + kLaunchLatency;
}

double PerfModel::collective_seconds(Collective kind, int p,
                                     std::uint64_t bytes) const {
  if (p <= 1) return 1e-7;
  double depth = std::log2(static_cast<double>(p));
  // Small messages ride the fabric's hardware-accelerated collective path
  // (Omni-Path/IB offload), cutting the per-hop software latency; large
  // messages pay the full alpha. This is why measured aggregate Bcast
  // time in applications is dominated by the per-rank arrival term — the
  // linear behavior Extra-P finds in Figure 14.
  double alpha_eff = bytes <= 1024 ? alpha_s_ * 0.25 : alpha_s_;
  double message = alpha_eff + static_cast<double>(bytes) * beta_s_per_byte_;
  double tree = depth * message;
  double arrival = arrival_s_per_rank_ * static_cast<double>(p);
  switch (kind) {
    case Collective::bcast:
      return tree + arrival;
    case Collective::reduce:
      return tree * 1.1 + arrival;  // reduction op on top of the tree
    case Collective::allreduce:
      // reduce + bcast (or ring: 2(p-1)/p * n/B) — take tree form.
      return 2.0 * tree * 1.05 + arrival;
    case Collective::barrier:
      return depth * alpha_s_ * 2.0 + arrival;
    case Collective::allgather:
      return (static_cast<double>(p - 1)) *
                 (alpha_s_ + static_cast<double>(bytes) * beta_s_per_byte_) /
                 std::max(1.0, depth) +
             arrival;
  }
  return tree + arrival;
}

double PerfModel::p2p_seconds(std::uint64_t bytes) const {
  return alpha_s_ + static_cast<double>(bytes) * beta_s_per_byte_;
}

double PerfModel::ring_seconds(int p, std::uint64_t bytes) const {
  if (p <= 1) return 1e-7;
  // All exchanges run simultaneously, so the base is one neighbor message
  // (times the NUMA surcharge for on-node cross-socket hops); shared
  // links add a gentle log(p) congestion factor.
  double step = alpha_s_ * numa_factor_ +
                static_cast<double>(bytes) * beta_s_per_byte_;
  return step * (1.0 + 0.03 * std::log2(static_cast<double>(p)));
}

}  // namespace benchpark::system
