#include "src/system/system.hpp"

#include <thread>

#include "src/archspec/microarch.hpp"
#include "src/support/error.hpp"

namespace benchpark::system {

using concretizer::CompilerEntry;
using spec::Version;

std::string_view scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::slurm: return "slurm";
    case SchedulerKind::lsf: return "lsf";
    case SchedulerKind::flux: return "flux";
  }
  return "?";
}

yaml::Node SystemDescription::variables_yaml() const {
  yaml::Node root = yaml::Node::make_mapping();
  yaml::Node& vars = root["variables"];
  vars = yaml::Node::make_mapping();
  switch (scheduler) {
    case SchedulerKind::slurm:
      vars["mpi_command"] = yaml::Node("srun -N {n_nodes} -n {n_ranks}");
      vars["batch_submit"] = yaml::Node("sbatch {execute_experiment}");
      vars["batch_nodes"] = yaml::Node("#SBATCH -N {n_nodes}");
      vars["batch_ranks"] = yaml::Node("#SBATCH -n {n_ranks}");
      vars["batch_timeout"] = yaml::Node("#SBATCH -t {batch_time}:00");
      break;
    case SchedulerKind::lsf:
      vars["mpi_command"] =
          yaml::Node("jsrun -n {n_ranks} -a 1 -c {n_threads}");
      vars["batch_submit"] = yaml::Node("bsub {execute_experiment}");
      vars["batch_nodes"] = yaml::Node("#BSUB -nnodes {n_nodes}");
      vars["batch_ranks"] = yaml::Node("#BSUB -n {n_ranks}");
      vars["batch_timeout"] = yaml::Node("#BSUB -W {batch_time}");
      break;
    case SchedulerKind::flux:
      vars["mpi_command"] = yaml::Node("flux run -N {n_nodes} -n {n_ranks}");
      vars["batch_submit"] = yaml::Node("flux batch {execute_experiment}");
      vars["batch_nodes"] = yaml::Node("#flux: -N {n_nodes}");
      vars["batch_ranks"] = yaml::Node("#flux: -n {n_ranks}");
      vars["batch_timeout"] = yaml::Node("#flux: -t {batch_time}m");
      break;
  }
  return root;
}

// ----------------------------------------------------------------- factories

SystemDescription make_cts1() {
  SystemDescription s;
  s.name = "cts1";
  s.site = "LLNL";
  s.description = "Commodity Technology System: CPU-only Intel Xeon";
  s.num_nodes = 256;
  s.cpu = {"Intel Xeon E5-2695 v4", "broadwell", 36, 2.1, 16, 154};
  s.node_mem_gb = 128;
  s.interconnect = {"Omni-Path", 1.1, 12.5};
  s.scheduler = SchedulerKind::slurm;
  s.mpi_launcher = "srun";
  s.noise_sigma = 0.02;
  s.seed = 1001;

  s.config.add_compiler({"gcc", Version("12.1.1"), "/usr/tce/bin/gcc",
                         "/usr/tce/bin/g++"});
  s.config.add_compiler({"gcc", Version("10.3.1"), "", ""});
  s.config.add_compiler({"intel", Version("2021.6.0"), "", ""});
  s.config.set_default_compiler("gcc@12.1.1");
  s.config.set_default_target("broadwell");
  // Figure 4: MKL and mvapich2 are system-installed externals.
  for (const char* v : {"blas", "lapack"}) {
    auto& settings = s.config.package(v);
    settings.externals.push_back(
        {spec::Spec::parse("intel-oneapi-mkl@2022.1.0"),
         "/usr/tce/packages/mkl/mkl-2022.1.0"});
    settings.buildable = false;
  }
  s.config.package("intel-oneapi-mkl")
      .externals.push_back({spec::Spec::parse("intel-oneapi-mkl@2022.1.0"),
                            "/usr/tce/packages/mkl/mkl-2022.1.0"});
  auto& mpi = s.config.package("mpi");
  mpi.externals.push_back(
      {spec::Spec::parse("mvapich2@2.3.7"),
       "/usr/tce/packages/mvapich2/mvapich2-2.3.7-gcc-12.1.1"});
  mpi.buildable = false;
  s.config.package("mvapich2")
      .externals.push_back(
          {spec::Spec::parse("mvapich2@2.3.7"),
           "/usr/tce/packages/mvapich2/mvapich2-2.3.7-gcc-12.1.1"});
  return s;
}

SystemDescription make_ats2() {
  SystemDescription s;
  s.name = "ats2";
  s.site = "LLNL";
  s.description =
      "Advanced Technology System 2: IBM Power9 + NVIDIA V100 (Sierra-class)";
  s.num_nodes = 1024;
  s.cpu = {"IBM Power9", "power9le", 44, 3.45, 8, 170};
  s.gpu = GpuModel{"NVIDIA V100", "cuda", 4, 7.8, 900, 16};
  s.node_mem_gb = 256;
  s.interconnect = {"InfiniBand EDR", 0.9, 12.5};
  s.scheduler = SchedulerKind::lsf;
  s.mpi_launcher = "jsrun";
  s.noise_sigma = 0.025;
  s.seed = 2002;

  s.config.add_compiler({"gcc", Version("8.3.1"), "", ""});
  s.config.add_compiler({"clang", Version("14.0.5"), "", ""});
  s.config.add_compiler({"xl", Version("16.1.1"), "", ""});
  s.config.set_default_compiler("clang@14.0.5");
  s.config.set_default_target("power9le");
  auto& mpi = s.config.package("mpi");
  mpi.externals.push_back(
      {spec::Spec::parse("spectrum-mpi@10.3.1"),
       "/usr/tce/packages/spectrum-mpi/spectrum-mpi-rolling-release"});
  mpi.buildable = false;
  s.config.package("spectrum-mpi")
      .externals.push_back(
          {spec::Spec::parse("spectrum-mpi@10.3.1"),
           "/usr/tce/packages/spectrum-mpi/spectrum-mpi-rolling-release"});
  auto& cuda = s.config.package("cuda");
  cuda.externals.push_back({spec::Spec::parse("cuda@11.2.0"),
                            "/usr/tce/packages/cuda/cuda-11.2.0"});
  cuda.buildable = false;
  auto& blas = s.config.package("blas");
  blas.externals.push_back(
      {spec::Spec::parse("essl@6.3.0"), "/opt/ibmmath/essl/6.3"});
  s.config.package("essl").externals.push_back(
      {spec::Spec::parse("essl@6.3.0"), "/opt/ibmmath/essl/6.3"});
  return s;
}

SystemDescription make_ats4_ea() {
  SystemDescription s;
  s.name = "ats4";
  s.site = "LLNL";
  s.description =
      "ATS-4 early access system: AMD Trento + MI-250X (El Capitan-class)";
  s.num_nodes = 64;
  s.cpu = {"AMD EPYC 7A53 (Trento)", "zen3", 64, 2.0, 16, 205};
  s.gpu = GpuModel{"AMD MI-250X", "rocm", 4, 47.9, 3200, 128};
  s.node_mem_gb = 512;
  s.interconnect = {"Slingshot-11", 0.8, 25.0};
  s.scheduler = SchedulerKind::flux;
  s.mpi_launcher = "flux run";
  s.noise_sigma = 0.04;  // early-access systems are noisier
  s.seed = 3003;

  s.config.add_compiler({"cce", Version("15.0.1"), "", ""});
  s.config.add_compiler({"rocmcc", Version("5.4.3"), "", ""});
  s.config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  s.config.set_default_compiler("cce@15.0.1");
  s.config.set_default_target("zen3");
  auto& mpi = s.config.package("mpi");
  mpi.externals.push_back({spec::Spec::parse("cray-mpich@8.1.26"),
                           "/opt/cray/pe/mpich/8.1.26"});
  mpi.buildable = false;
  s.config.package("cray-mpich")
      .externals.push_back({spec::Spec::parse("cray-mpich@8.1.26"),
                            "/opt/cray/pe/mpich/8.1.26"});
  auto& hip = s.config.package("hip");
  hip.externals.push_back(
      {spec::Spec::parse("hip@5.4.3"), "/opt/rocm-5.4.3"});
  hip.buildable = false;
  return s;
}

SystemDescription make_cloud_cts() {
  // "a cloud instance of similar architecture" (Section 7.1): looks like
  // cts1 but a hardware feature the vendor math library probes for is
  // missing, so library calls taking that code path crash.
  SystemDescription s = make_cts1();
  s.name = "cloud-cts";
  s.site = "cloud";
  s.description =
      "Cloud twin of cts1 (similar architecture, virtualized nodes)";
  s.num_nodes = 16;
  s.interconnect = {"EFA", 15.0, 12.5};  // cloud fabric: higher latency
  s.noise_sigma = 0.08;                  // multi-tenant noise
  s.seed = 4004;
  s.disabled_features = {"rdseed"};  // the missing hardware feature
  return s;
}

SystemDescription make_cts2() {
  SystemDescription s;
  s.name = "cts2";
  s.site = "LLNL";
  s.description =
      "Commodity Technology System 2: dual-socket Sapphire Rapids NUMA nodes";
  s.num_nodes = 128;
  s.cpu = {"Intel Xeon Platinum 8480+", "sapphirerapids", 112, 2.0, 32, 614};
  s.node_mem_gb = 512;
  s.interconnect = {"Cornelis Omni-Path Express", 1.0, 25.0};
  s.topology = {2, 0.18, 180.0};  // two sockets, UPI cross-socket penalty
  s.scheduler = SchedulerKind::slurm;
  s.mpi_launcher = "srun";
  s.noise_sigma = 0.02;
  s.seed = 5005;
  s.base_params = archspec::kernel_base_parameters("sapphirerapids");

  s.config.add_compiler({"gcc", Version("12.1.1"), "/usr/tce/bin/gcc",
                         "/usr/tce/bin/g++"});
  s.config.add_compiler({"intel", Version("2023.2.1"), "", ""});
  s.config.set_default_compiler("gcc@12.1.1");
  s.config.set_default_target("sapphirerapids");
  auto& mpi = s.config.package("mpi");
  mpi.externals.push_back(
      {spec::Spec::parse("mvapich2@2.3.7"),
       "/usr/tce/packages/mvapich2/mvapich2-2.3.7-gcc-12.1.1"});
  mpi.buildable = false;
  s.config.package("mvapich2")
      .externals.push_back(
          {spec::Spec::parse("mvapich2@2.3.7"),
           "/usr/tce/packages/mvapich2/mvapich2-2.3.7-gcc-12.1.1"});
  return s;
}

SystemDescription make_fpga1() {
  SystemDescription s;
  s.name = "fpga1";
  s.site = "pc2";
  s.description =
      "FPGA-accelerated cluster: Xeon hosts + 2x Stratix-10 OpenCL cards";
  s.num_nodes = 32;
  s.cpu = {"Intel Xeon Gold 6148", "skylake_avx512", 40, 2.4, 32, 256};
  // The card is modeled through the GPU slot: the perf model only needs
  // peak rate, memory bandwidth and count, not the programming model.
  s.gpu = GpuModel{"BittWare 520N (Stratix 10 GX2800)", "opencl", 2, 0.3,
                   76.8, 32};
  s.node_mem_gb = 192;
  s.interconnect = {"InfiniBand HDR + serial channels", 1.2, 25.0};
  s.scheduler = SchedulerKind::slurm;
  s.mpi_launcher = "srun";
  s.noise_sigma = 0.03;
  s.seed = 6006;
  // HPCC_FPGA-style base-parameter config: archspec defaults for the
  // host, overridden with the bitstream's synthesis parameters.
  s.base_params = archspec::kernel_base_parameters("skylake_avx512");
  s.base_params["accel_block_size"] = "512";    // GEMM systolic block
  s.base_params["accel_channel_width"] = "512";  // bits per serial channel
  s.base_params["accel_kernel_replications"] = "4";

  s.config.add_compiler({"gcc", Version("12.1.1"), "", ""});
  s.config.set_default_compiler("gcc@12.1.1");
  s.config.set_default_target("skylake_avx512");
  auto& mpi = s.config.package("mpi");
  mpi.externals.push_back({spec::Spec::parse("openmpi@4.1.4"),
                           "/opt/openmpi/4.1.4"});
  mpi.buildable = false;
  return s;
}

SystemDescription make_native() {
  SystemDescription s;
  s.name = "native";
  s.site = "local";
  s.description = "The machine this library is running on (real execution)";
  s.num_nodes = 1;
  unsigned hw = std::thread::hardware_concurrency();
  s.cpu = {"host", archspec::detect_host(), hw ? static_cast<int>(hw) : 1,
           2.0, 8, 20};
  s.node_mem_gb = 8;
  s.interconnect = {"shared-memory", 0.2, 50.0};
  s.scheduler = SchedulerKind::slurm;
  s.mpi_launcher = "srun";
  s.noise_sigma = 0.0;  // real runs carry their own real noise
  s.seed = 42;
  s.config.add_compiler({"gcc", Version("12.2.0"), "/usr/bin/gcc",
                         "/usr/bin/g++"});
  s.config.set_default_target(s.cpu.microarch);
  return s;
}

// ----------------------------------------------------------------- registry

const SystemRegistry& SystemRegistry::instance() {
  static const SystemRegistry registry;
  return registry;
}

SystemRegistry::SystemRegistry() {
  for (auto make : {make_cts1, make_ats2, make_ats4_ea, make_cloud_cts,
                    make_cts2, make_fpga1, make_native}) {
    auto s = make();
    auto name = s.name;
    systems_.insert_or_assign(std::move(name), std::move(s));
  }
}

const SystemDescription* SystemRegistry::find(std::string_view name) const {
  auto it = systems_.find(name);
  return it == systems_.end() ? nullptr : &it->second;
}

const SystemDescription& SystemRegistry::get(std::string_view name) const {
  const auto* found = find(name);
  if (!found) {
    throw SystemError(
        "unknown system '" + std::string(name) +
        "'; known systems: cts1, cts2, ats2, ats4, cloud-cts, fpga1, native");
  }
  return *found;
}

std::vector<std::string> SystemRegistry::names() const {
  std::vector<std::string> names;
  names.reserve(systems_.size());
  for (const auto& [name, s] : systems_) names.push_back(name);
  return names;
}

}  // namespace benchpark::system
