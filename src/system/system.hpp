// Simulated HPC systems.
//
// The paper demonstrates Benchpark on three LLNL systems (Section 4):
//   cts1 — CPU-only Intel Xeon commodity cluster
//   ats2 — IBM Power9 + NVIDIA V100 (Sierra-class)
//   ats4 EAS — AMD Trento + MI-250X early-access system (El Capitan-class)
// plus, for Section 7, cloud instances "of similar architecture".
//
// We cannot run on that hardware, so each system is modeled: node
// hardware, interconnect, scheduler/launcher flavor, a Spack config scope
// (compilers.yaml + packages.yaml, Figures 4/9), the Ramble variables.yaml
// (Figure 12), and a performance model the simulated runtime uses to
// produce realistic timings. The *decision logic* driven by these systems
// (config selection, script rendering, launcher syntax) is fully real.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/concretizer/config.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::system {

struct ProcessorModel {
  std::string name;          // "Intel Xeon E5-2695 v4"
  std::string microarch;     // archspec name: broadwell, power9le, zen3
  int cores_per_node = 1;
  double ghz = 2.0;
  double flops_per_cycle_per_core = 16;  // FP64 FMA-vector width
  double mem_bw_gbs = 100;               // per-node STREAM bandwidth

  [[nodiscard]] double peak_gflops() const {
    return cores_per_node * ghz * flops_per_cycle_per_core;
  }
};

struct GpuModel {
  std::string name;     // "NVIDIA V100"
  std::string runtime;  // "cuda" or "rocm"
  int per_node = 0;
  double fp64_tflops = 7.0;
  double mem_bw_gbs = 900;
  double mem_gb = 16;
};

struct InterconnectModel {
  std::string name;        // "Omni-Path", "InfiniBand EDR", "Slingshot-11"
  double latency_us = 1.0; // point-to-point
  double bandwidth_gbs = 12.5;
};

/// Intra-node topology: NUMA domains and the cross-socket surcharge the
/// perf model applies. The defaults (one socket, zero penalty) are
/// neutral — single-socket systems keep byte-identical modeled timings.
struct TopologyModel {
  int sockets = 1;            // NUMA domains per node
  double numa_penalty = 0.0;  // fractional bw/latency cost across sockets
  double intra_node_bw_gbs = 0.0;  // 0 = model with interconnect bandwidth
};

enum class SchedulerKind { slurm, lsf, flux };

[[nodiscard]] std::string_view scheduler_name(SchedulerKind kind);

/// Complete description of one HPC system.
struct SystemDescription {
  std::string name;  // "cts1"
  std::string site;  // "LLNL", "AWS", ...
  std::string description;
  int num_nodes = 1;
  ProcessorModel cpu;
  std::optional<GpuModel> gpu;
  double node_mem_gb = 128;
  InterconnectModel interconnect;
  TopologyModel topology;
  SchedulerKind scheduler = SchedulerKind::slurm;
  std::string mpi_launcher;  // "srun", "jsrun", "flux run"

  /// Kernel base parameters (HPCC_FPGA-style base-parameter config):
  /// archspec-derived defaults (vector width, FMA, blocking) that a
  /// system may override for its attached accelerator.
  std::map<std::string, std::string> base_params;

  /// The Spack config scope for this system (compilers.yaml,
  /// packages.yaml with externals — Figure 4).
  concretizer::Config config;

  /// Run-to-run noise (relative sigma) applied to simulated timings.
  double noise_sigma = 0.02;
  /// Seed making this system's simulated measurements reproducible.
  std::uint64_t seed = 1;

  /// Hardware features the math library depends on; systems "of similar
  /// architecture" may miss one (the Section 7.1 cloud-bug story).
  std::set<std::string> disabled_features;

  [[nodiscard]] bool has_gpu() const { return gpu.has_value(); }
  [[nodiscard]] int ranks_capacity() const {
    return num_nodes * cpu.cores_per_node;
  }

  /// The Ramble variables.yaml for this system (Figure 12): scheduler
  /// and launcher command templates.
  [[nodiscard]] yaml::Node variables_yaml() const;
};

/// Registry of the paper's systems plus cloud/native.
class SystemRegistry {
public:
  static const SystemRegistry& instance();

  [[nodiscard]] const SystemDescription& get(std::string_view name) const;
  [[nodiscard]] const SystemDescription* find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

private:
  SystemRegistry();
  std::map<std::string, SystemDescription, std::less<>> systems_;
};

// Factories (exposed for tests and for building modified variants).
SystemDescription make_cts1();
SystemDescription make_ats2();
SystemDescription make_ats4_ea();
/// A cloud twin of cts1 "of similar architecture" missing one hardware
/// feature the vendor math library uses (Section 7.1).
SystemDescription make_cloud_cts();
/// CTS-2-class dual-socket NUMA cluster (Sapphire Rapids): the perf
/// model charges its cross-socket penalty when kernels span sockets.
SystemDescription make_cts2();
/// FPGA-accelerated target a la pc2/HPCC_FPGA: host CPU plus two
/// OpenCL-attached accelerator cards; kernel base parameters come from
/// archspec and are overridden with the card's bitstream configuration.
SystemDescription make_fpga1();
/// The machine the library itself runs on (real detection; used by the
/// quickstart to run saxpy natively).
SystemDescription make_native();

}  // namespace benchpark::system
