// b_eff-style effective network bandwidth (Rabenseifner's b_eff, the
// HPCC suite's network component): sweep message sizes from 1 B to
// 16 MiB through two communication patterns — a simultaneous-neighbor
// ring and a log-depth tree — on a system's performance model, then
// summarize as one aggregate "effective bandwidth" figure plus a
// least-squares alpha-beta (latency-bandwidth) fit per pattern.
//
// The sweep runs against PerfModel, so system topology flows in: the
// ring pattern pays the NUMA cross-socket surcharge on multi-socket
// nodes, the tree pattern carries the per-rank arrival term that makes
// aggregate time grow with rank count (the Extra-P-visible behavior).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/system/perf_model.hpp"
#include "src/system/system.hpp"

namespace benchpark::system {

struct BeffSample {
  std::uint64_t bytes = 0;
  double ring_seconds = 0;
  double tree_seconds = 0;

  [[nodiscard]] double ring_mbs() const {
    return ring_seconds > 0 ? static_cast<double>(bytes) / ring_seconds / 1e6
                            : 0;
  }
  [[nodiscard]] double tree_mbs() const {
    return tree_seconds > 0 ? static_cast<double>(bytes) / tree_seconds / 1e6
                            : 0;
  }
};

/// Least-squares fit of t(m) = alpha + beta * m over a sweep.
struct AlphaBetaFit {
  double alpha_us = 0;          // fitted latency
  double bandwidth_gbs = 0;     // 1 / fitted beta
  double max_rel_residual = 0;  // worst relative misfit over the sweep
};

struct BeffResult {
  std::string system;
  int ranks = 1;
  std::vector<BeffSample> samples;
  AlphaBetaFit ring_fit;
  AlphaBetaFit tree_fit;
  /// Aggregate effective bandwidth: ranks x the per-process average of
  /// size/time over both patterns and all sizes (MB/s).
  double beff_mbs = 0;
  /// One-byte ring-step latency (µs).
  double latency_us = 0;
  /// Modeled wall time of the whole sweep (both patterns, all sizes).
  double sweep_seconds = 0;
};

/// The sweep sizes: 1 B to 16 MiB in powers of 4 (13 points).
[[nodiscard]] std::vector<std::uint64_t> beff_message_sizes();

/// Fit t(m) = alpha + beta * m by least squares; sizes and seconds are
/// parallel arrays (>= 2 distinct sizes required).
[[nodiscard]] AlphaBetaFit fit_alpha_beta(
    const std::vector<std::uint64_t>& sizes,
    const std::vector<double>& seconds);

/// Run the sweep for `ranks` processes on `system`'s performance model.
[[nodiscard]] BeffResult run_beff(const SystemDescription& system, int ranks);

/// Render the b_eff report (table, fits, FOM lines, success string).
[[nodiscard]] std::string beff_output(const BeffResult& result);

}  // namespace benchpark::system
