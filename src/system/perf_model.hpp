// Per-system performance models.
//
// The simulated runtime asks these models how long a kernel or an MPI
// collective takes on a given system. Kernels use a roofline model
// (compute-bound vs memory-bound); collectives use a log-tree alpha-beta
// model plus a per-rank arrival/contention term — the term that makes
// aggregate MPI_Bcast time grow linearly with process count, which is
// exactly the behavior Extra-P models in the paper's Figure 14.
#pragma once

#include <cstdint>

#include "src/system/system.hpp"

namespace benchpark::system {

enum class Collective { bcast, allreduce, reduce, barrier, allgather };

[[nodiscard]] std::string_view collective_name(Collective c);

class PerfModel {
public:
  explicit PerfModel(const SystemDescription& system);

  /// Seconds for a CPU kernel moving `bytes` and doing `flops`, run with
  /// `ranks_per_node` MPI ranks of `threads` OpenMP threads each.
  [[nodiscard]] double cpu_kernel_seconds(double flops, double bytes,
                                          int ranks_per_node,
                                          int threads) const;

  /// Seconds for the same kernel offloaded to one GPU per rank.
  /// Throws SystemError when the system has no GPUs.
  [[nodiscard]] double gpu_kernel_seconds(double flops, double bytes,
                                          int ranks_per_node) const;

  /// Seconds for one collective over `p` ranks with `bytes` payload.
  [[nodiscard]] double collective_seconds(Collective kind, int p,
                                          std::uint64_t bytes) const;

  /// Point-to-point message time.
  [[nodiscard]] double p2p_seconds(std::uint64_t bytes) const;

  /// One ring-pattern step over `p` ranks: every rank exchanges `bytes`
  /// with its neighbors simultaneously, so the base cost is one message,
  /// inflated by a slow log(p) congestion term and — on multi-socket
  /// topologies — the cross-socket NUMA surcharge. This is the b_eff
  /// sweep's ring pattern (src/system/beff.hpp).
  [[nodiscard]] double ring_seconds(int p, std::uint64_t bytes) const;

  [[nodiscard]] const SystemDescription& system() const { return system_; }

private:
  const SystemDescription& system_;  // registry-owned, outlives the model
  double alpha_s_;                   // interconnect latency (s)
  double beta_s_per_byte_;           // 1 / interconnect bandwidth
  double arrival_s_per_rank_;        // per-rank sync/contention overhead
  double numa_factor_;               // 1.0 on single-socket topologies
};

}  // namespace benchpark::system
