#include "src/system/beff.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::system {

using support::format_double;
using support::pad_left;

std::vector<std::uint64_t> beff_message_sizes() {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t m = 1; m <= (std::uint64_t{16} << 20); m *= 4) {
    sizes.push_back(m);
  }
  return sizes;  // 1 B .. 16 MiB, x4: 13 points
}

AlphaBetaFit fit_alpha_beta(const std::vector<std::uint64_t>& sizes,
                            const std::vector<double>& seconds) {
  if (sizes.size() != seconds.size() || sizes.size() < 2) {
    throw SystemError("alpha-beta fit needs >= 2 (size, time) samples");
  }
  const double n = static_cast<double>(sizes.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double x = static_cast<double>(sizes[i]);
    const double y = seconds[i];
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0) throw SystemError("alpha-beta fit needs distinct sizes");
  const double beta = (n * sxy - sx * sy) / denom;
  const double alpha = (sy - beta * sx) / n;

  AlphaBetaFit fit;
  fit.alpha_us = alpha * 1e6;
  fit.bandwidth_gbs = beta > 0 ? 1.0 / beta / 1e9 : 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double predicted = alpha + beta * static_cast<double>(sizes[i]);
    if (seconds[i] > 0) {
      fit.max_rel_residual =
          std::max(fit.max_rel_residual,
                   std::fabs(predicted - seconds[i]) / seconds[i]);
    }
  }
  return fit;
}

BeffResult run_beff(const SystemDescription& system, int ranks) {
  PerfModel model(system);
  BeffResult result;
  result.system = system.name;
  result.ranks = ranks;

  const auto sizes = beff_message_sizes();
  std::vector<double> ring_times, tree_times;
  double bandwidth_sum = 0;
  for (std::uint64_t m : sizes) {
    BeffSample sample;
    sample.bytes = m;
    sample.ring_seconds = model.ring_seconds(ranks, m);
    sample.tree_seconds =
        model.collective_seconds(Collective::bcast, ranks, m);
    ring_times.push_back(sample.ring_seconds);
    tree_times.push_back(sample.tree_seconds);
    bandwidth_sum += sample.ring_mbs() + sample.tree_mbs();
    result.sweep_seconds += sample.ring_seconds + sample.tree_seconds;
    result.samples.push_back(sample);
  }

  result.ring_fit = fit_alpha_beta(sizes, ring_times);
  result.tree_fit = fit_alpha_beta(sizes, tree_times);
  // b_eff aggregates over processes: the per-process average bandwidth
  // across patterns and sizes, times the rank count.
  result.beff_mbs = static_cast<double>(ranks) * bandwidth_sum /
                    (2.0 * static_cast<double>(sizes.size()));
  result.latency_us = model.ring_seconds(ranks, 1) * 1e6;
  return result;
}

std::string beff_output(const BeffResult& result) {
  std::string out;
  out += "b_eff system=" + result.system +
         " ranks=" + std::to_string(result.ranks) + "\n";
  out += pad_left("bytes", 10) + pad_left("ring_us", 12) +
         pad_left("tree_us", 12) + pad_left("ring_MB/s", 12) +
         pad_left("tree_MB/s", 12) + "\n";
  for (const auto& s : result.samples) {
    out += pad_left(std::to_string(s.bytes), 10) +
           pad_left(format_double(s.ring_seconds * 1e6, 3), 12) +
           pad_left(format_double(s.tree_seconds * 1e6, 3), 12) +
           pad_left(format_double(s.ring_mbs(), 2), 12) +
           pad_left(format_double(s.tree_mbs(), 2), 12) + "\n";
  }
  out += "Ring fit alpha_us: " + format_double(result.ring_fit.alpha_us, 3) +
         " bandwidth_gbs: " +
         format_double(result.ring_fit.bandwidth_gbs, 3) + "\n";
  out += "Tree fit alpha_us: " + format_double(result.tree_fit.alpha_us, 3) +
         " bandwidth_gbs: " +
         format_double(result.tree_fit.bandwidth_gbs, 3) + "\n";
  out += "Effective latency us: " + format_double(result.latency_us, 3) +
         "\n";
  out += "b_eff MB/s: " + format_double(result.beff_mbs, 2) + "\n";
  out += "Kernel done\n";
  return out;
}

}  // namespace benchpark::system
