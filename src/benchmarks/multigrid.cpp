#include "src/benchmarks/multigrid.hpp"

#include <chrono>
#include <cmath>
#include <numbers>

#include "src/support/error.hpp"
#include "src/support/parallel.hpp"
#include "src/support/simd.hpp"
#include "src/support/simd_dispatch.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::benchmarks {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One level of the hierarchy: an n x n interior grid with spacing h.
/// Values are stored with a one-cell ghost halo ((n+2) x (n+2)) so the
/// 5-point stencil needs no boundary branches; the halo stays zero
/// (homogeneous Dirichlet).
struct Level {
  std::size_t n = 0;
  double h = 0;
  std::vector<double> u;    // solution / correction
  std::vector<double> f;    // right-hand side
  std::vector<double> r;    // residual scratch
  // Hoisted kernel scratch: smooth() ping-pongs u against `next` and
  // residual() accumulates into `partial`; both were reallocated on every
  // call before the pooled engine landed.
  std::vector<double> next;
  std::vector<double> partial;

  explicit Level(std::size_t n_in)
      : n(n_in),
        h(1.0 / static_cast<double>(n_in + 1)),
        u((n_in + 2) * (n_in + 2), 0.0),
        f((n_in + 2) * (n_in + 2), 0.0),
        r((n_in + 2) * (n_in + 2), 0.0),
        next((n_in + 2) * (n_in + 2), 0.0) {}

  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    return i * (n + 2) + j;  // i, j in [0, n+1]; interior is [1, n]
  }
};

/// Weighted Jacobi smoother (ω = 4/5 is near-optimal for the 2-D 5-point
/// Laplacian). Matrix-free: A u = (4u_ij - u_W - u_E - u_S - u_N) / h².
void smooth(Level& level, int sweeps, int threads) {
  static const auto smooth_row = benchpark::support::select_kernel(
      &multigrid_smooth_row, &multigrid_smooth_row_scalar);
  const std::size_t n = level.n;
  const double h2 = level.h * level.h;
  const double omega = 0.8;
  // The halo of `next` stays zero (as u's does) and the sweep overwrites
  // the whole interior, so the persistent buffer needs no reset.
  std::vector<double>& next = level.next;
  for (int s = 0; s < sweeps; ++s) {
    benchpark::support::parallel_for(
        n, threads, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo + 1; i <= hi; ++i) {
            const std::size_t base = i * (n + 2);
            smooth_row(next.data() + base, level.u.data() + base,
                       level.f.data() + base, n, n + 2, h2, omega);
          }
        });
    level.u.swap(next);
  }
}

/// r = f - A u; returns ||r||_2 over the interior.
double residual(Level& level, int threads) {
  static const auto residual_row = benchpark::support::select_kernel(
      &multigrid_residual_row, &multigrid_residual_row_scalar);
  const std::size_t n = level.n;
  const double inv_h2 = 1.0 / (level.h * level.h);
  const std::size_t nchunks = static_cast<std::size_t>(threads > 0 ? threads : 1);
  if (level.partial.size() < nchunks) level.partial.resize(nchunks);
  std::vector<double>& partial = level.partial;
  // Chunked reduction: each worker accumulates its own partial sum.
  benchpark::support::parallel_for(
      nchunks, static_cast<int>(nchunks),
      [&](std::size_t chunk_lo, std::size_t chunk_hi) {
        for (std::size_t chunk = chunk_lo; chunk < chunk_hi; ++chunk) {
          std::size_t row_lo = 1 + chunk * n / nchunks;
          std::size_t row_hi = 1 + (chunk + 1) * n / nchunks;
          double sum = 0;
          for (std::size_t i = row_lo; i < row_hi; ++i) {
            const std::size_t base = i * (n + 2);
            sum += residual_row(level.r.data() + base, level.u.data() + base,
                                level.f.data() + base, n, n + 2, inv_h2);
          }
          partial[chunk] = sum;
        }
      });
  double total = 0;
  for (std::size_t c = 0; c < nchunks; ++c) total += partial[c];
  return std::sqrt(total);
}

/// Full-weighting restriction of the fine residual to the coarse RHS.
/// Fine n must be 2*coarse_n + 1.
void restrict_residual(const Level& fine, Level& coarse, int threads) {
  const std::size_t nc = coarse.n;
  const std::size_t nf = fine.n;
  benchpark::support::parallel_for(
      nc, threads, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t ic = lo + 1; ic <= hi; ++ic) {
          std::size_t i = 2 * ic;  // fine index
          for (std::size_t jc = 1; jc <= nc; ++jc) {
            std::size_t j = 2 * jc;
            std::size_t c = i * (nf + 2) + j;
            double center = fine.r[c];
            double edges = fine.r[c - 1] + fine.r[c + 1] +
                           fine.r[c - (nf + 2)] + fine.r[c + (nf + 2)];
            double corners = fine.r[c - (nf + 2) - 1] +
                             fine.r[c - (nf + 2) + 1] +
                             fine.r[c + (nf + 2) - 1] +
                             fine.r[c + (nf + 2) + 1];
            coarse.f[coarse.idx(ic, jc)] =
                0.25 * center + 0.125 * edges + 0.0625 * corners;
          }
        }
      });
}

/// Bilinear prolongation of the coarse correction added into the fine u.
void prolongate_and_correct(const Level& coarse, Level& fine, int threads) {
  const std::size_t nc = coarse.n;
  const std::size_t nf = fine.n;
  benchpark::support::parallel_for(
      nc + 1, threads, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t ic = lo; ic < hi; ++ic) {
          // Each coarse cell (ic, jc) injects into the 2x2 fine block at
          // (2ic+1, 2jc+1); corners interpolate from 4 coarse values.
          for (std::size_t jc = 0; jc <= nc; ++jc) {
            double c00 = coarse.u[coarse.idx(ic, jc)];
            double c01 = coarse.u[coarse.idx(ic, jc + 1)];
            double c10 = coarse.u[coarse.idx(ic + 1, jc)];
            double c11 = coarse.u[coarse.idx(ic + 1, jc + 1)];
            std::size_t fi = 2 * ic + 1;
            std::size_t fj = 2 * jc + 1;
            fine.u[fi * (nf + 2) + fj] +=
                0.25 * (c00 + c01 + c10 + c11);
            if (fj + 1 <= nf) {
              fine.u[fi * (nf + 2) + fj + 1] += 0.5 * (c01 + c11);
            }
            if (fi + 1 <= nf) {
              fine.u[(fi + 1) * (nf + 2) + fj] += 0.5 * (c10 + c11);
            }
            if (fi + 1 <= nf && fj + 1 <= nf) {
              fine.u[(fi + 1) * (nf + 2) + fj + 1] += c11;
            }
          }
        }
      });
}

void v_cycle(std::vector<Level>& levels, std::size_t depth,
             const MultigridOptions& options) {
  Level& level = levels[depth];
  if (depth + 1 == levels.size()) {
    // Coarsest grid: smooth it out (tiny grid, many sweeps ~ exact).
    smooth(level, 30, 1);
    return;
  }
  smooth(level, options.pre_smooth, options.threads);
  (void)residual(level, options.threads);
  Level& coarse = levels[depth + 1];
  std::fill(coarse.u.begin(), coarse.u.end(), 0.0);
  restrict_residual(level, coarse, options.threads);
  v_cycle(levels, depth + 1, options);
  prolongate_and_correct(coarse, level, options.threads);
  smooth(level, options.post_smooth, options.threads);
}

}  // namespace

// -- vectorized inner-loop kernels ----------------------------------------

void multigrid_smooth_row(double* next_row, const double* u_row,
                          const double* f_row, std::size_t n,
                          std::size_t stride, double h2, double omega) {
  const double* north = u_row - stride;
  const double* south = u_row + stride;
  BENCHPARK_SIMD
  for (std::size_t j = 1; j <= n; ++j) {
    double sum = u_row[j - 1] + u_row[j + 1] + north[j] + south[j];
    double jac = 0.25 * (h2 * f_row[j] + sum);
    next_row[j] = u_row[j] + omega * (jac - u_row[j]);
  }
}

BENCHPARK_NO_VECTORIZE
void multigrid_smooth_row_scalar(double* next_row, const double* u_row,
                                 const double* f_row, std::size_t n,
                                 std::size_t stride, double h2, double omega) {
  const double* north = u_row - stride;
  const double* south = u_row + stride;
  for (std::size_t j = 1; j <= n; ++j) {
    double sum = u_row[j - 1] + u_row[j + 1] + north[j] + south[j];
    double jac = 0.25 * (h2 * f_row[j] + sum);
    next_row[j] = u_row[j] + omega * (jac - u_row[j]);
  }
}

double multigrid_residual_row(double* r_row, const double* u_row,
                              const double* f_row, std::size_t n,
                              std::size_t stride, double inv_h2) {
  const double* north = u_row - stride;
  const double* south = u_row + stride;
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::size_t j = 1;
  for (; j + 3 <= n; j += 4) {
    double rv0 = f_row[j] - (4.0 * u_row[j] - u_row[j - 1] - u_row[j + 1] -
                             north[j] - south[j]) *
                                inv_h2;
    double rv1 =
        f_row[j + 1] - (4.0 * u_row[j + 1] - u_row[j] - u_row[j + 2] -
                        north[j + 1] - south[j + 1]) *
                           inv_h2;
    double rv2 =
        f_row[j + 2] - (4.0 * u_row[j + 2] - u_row[j + 1] - u_row[j + 3] -
                        north[j + 2] - south[j + 2]) *
                           inv_h2;
    double rv3 =
        f_row[j + 3] - (4.0 * u_row[j + 3] - u_row[j + 2] - u_row[j + 4] -
                        north[j + 3] - south[j + 3]) *
                           inv_h2;
    r_row[j] = rv0;
    r_row[j + 1] = rv1;
    r_row[j + 2] = rv2;
    r_row[j + 3] = rv3;
    s0 += rv0 * rv0;
    s1 += rv1 * rv1;
    s2 += rv2 * rv2;
    s3 += rv3 * rv3;
  }
  for (; j <= n; ++j) {
    double rv = f_row[j] - (4.0 * u_row[j] - u_row[j - 1] - u_row[j + 1] -
                            north[j] - south[j]) *
                               inv_h2;
    r_row[j] = rv;
    s0 += rv * rv;
  }
  return (s0 + s1) + (s2 + s3);
}

BENCHPARK_NO_VECTORIZE
double multigrid_residual_row_scalar(double* r_row, const double* u_row,
                                     const double* f_row, std::size_t n,
                                     std::size_t stride, double inv_h2) {
  const double* north = u_row - stride;
  const double* south = u_row + stride;
  double sum = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    double rv = f_row[j] - (4.0 * u_row[j] - u_row[j - 1] - u_row[j + 1] -
                            north[j] - south[j]) *
                               inv_h2;
    r_row[j] = rv;
    sum += rv * rv;
  }
  return sum;
}

MultigridResult solve_poisson_multigrid(const MultigridOptions& options) {
  // The hierarchy needs n = 2^k - 1 so each coarse grid is (n-1)/2.
  std::size_t n = options.n;
  if (n < 3 || ((n + 1) & n) != 0) {
    throw Error("multigrid needs n = 2^k - 1 (got " + std::to_string(n) +
                ")");
  }

  MultigridResult result;
  result.n = n;

  // ---- setup phase: build the grid hierarchy and the RHS -----------------
  auto setup_start = Clock::now();
  std::vector<Level> levels;
  for (std::size_t size = n; size >= 3; size = (size - 1) / 2) {
    levels.emplace_back(size);
  }
  result.levels = static_cast<int>(levels.size());

  Level& fine = levels.front();
  const double pi = std::numbers::pi;
  // Manufactured solution u = sin(pi x) sin(pi y): f = 2 pi^2 u.
  for (std::size_t i = 1; i <= n; ++i) {
    double x = static_cast<double>(i) * fine.h;
    for (std::size_t j = 1; j <= n; ++j) {
      double y = static_cast<double>(j) * fine.h;
      fine.f[fine.idx(i, j)] =
          2.0 * pi * pi * std::sin(pi * x) * std::sin(pi * y);
    }
  }
  result.setup_seconds = seconds_since(setup_start);

  // ---- solve phase: V-cycles to tolerance ------------------------------
  auto solve_start = Clock::now();
  result.initial_residual = residual(fine, options.threads);
  double target = options.tolerance * result.initial_residual;
  double current = result.initial_residual;
  while (result.cycles < options.max_cycles && current > target) {
    v_cycle(levels, 0, options);
    current = residual(fine, options.threads);
    ++result.cycles;
  }
  result.final_residual = current;
  result.converged = current <= target;
  result.solve_seconds = seconds_since(solve_start);

  // ---- verification against the manufactured solution ------------------
  // max is associative and commutative, so the pooled reduction is
  // bitwise-identical to the serial scan regardless of chunking.
  result.solution_error = benchpark::support::parallel_reduce(
      n, options.threads, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double local_max = 0;
        for (std::size_t i = lo + 1; i <= hi; ++i) {
          double x = static_cast<double>(i) * fine.h;
          for (std::size_t j = 1; j <= n; ++j) {
            double y = static_cast<double>(j) * fine.h;
            double exact = std::sin(pi * x) * std::sin(pi * y);
            local_max = std::max(
                local_max, std::fabs(fine.u[fine.idx(i, j)] - exact));
          }
        }
        return local_max;
      },
      [](double a, double b) { return std::max(a, b); });
  return result;
}

double multigrid_cycle_flops(std::size_t n) {
  // Per fine point per cycle: ~4 smoothing sweeps (8 flops) + residual
  // (7) + transfer (~6), with the geometric-series 4/3 factor for the
  // coarse levels.
  double fine_points = static_cast<double>(n) * static_cast<double>(n);
  return fine_points * (4 * 8 + 7 + 6) * (4.0 / 3.0);
}

double multigrid_cycle_bytes(std::size_t n) {
  double fine_points = static_cast<double>(n) * static_cast<double>(n);
  // Each sweep streams u, f, next (3 arrays of doubles), 6 sweeps deep.
  return fine_points * 3 * sizeof(double) * 6 * (4.0 / 3.0);
}

std::string multigrid_output(const MultigridResult& result) {
  using benchpark::support::format_double;
  std::string out;
  out += "AMG solve on " + std::to_string(result.n) + "^2 grid, " +
         std::to_string(result.levels) + " levels\n";
  out += "iterations: " + std::to_string(result.cycles) + "\n";
  out += "relative residual: " +
         format_double(result.final_residual /
                           (result.initial_residual > 0
                                ? result.initial_residual
                                : 1.0),
                       4) +
         "\n";
  out += "Setup time: " + format_double(result.setup_seconds, 6) + " s\n";
  out += "Solve time: " + format_double(result.solve_seconds, 6) + " s\n";
  out += "Figure of Merit (FOM_Setup): " +
         format_double(result.setup_fom(), 6) + "\n";
  out += "Figure of Merit (FOM_Solve): " +
         format_double(result.solve_fom(), 6) + "\n";
  if (result.converged) out += "AMG converged\n";
  return out;
}

}  // namespace benchpark::benchmarks
