// STREAM memory-bandwidth benchmark (McCalpin): Copy, Scale, Add, Triad.
// Used as the third example benchmark added to Benchpark (Section 4 shows
// adding new benchmarks; examples/add_benchmark.cpp walks through it).
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace benchpark::benchmarks {

struct StreamResult {
  std::size_t n = 0;
  int threads = 1;
  // Best-of-repeats bandwidth in GB/s for copy, scale, add, triad.
  std::array<double, 4> bandwidth_gbs{};
  bool verified = false;
};

inline constexpr std::array<const char*, 4> kStreamKernelNames{
    "Copy", "Scale", "Add", "Triad"};

StreamResult run_stream(std::size_t n, int threads = 1, int repeats = 3);

[[nodiscard]] double stream_triad_bytes(std::size_t n);

std::string stream_output(const StreamResult& result);

}  // namespace benchpark::benchmarks
