// STREAM memory-bandwidth benchmark (McCalpin): Copy, Scale, Add, Triad.
// Used as the third example benchmark added to Benchpark (Section 4 shows
// adding new benchmarks; examples/add_benchmark.cpp walks through it).
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace benchpark::benchmarks {

struct StreamResult {
  std::size_t n = 0;
  int threads = 1;
  // Best-of-repeats bandwidth in GB/s for copy, scale, add, triad.
  std::array<double, 4> bandwidth_gbs{};
  bool verified = false;
};

inline constexpr std::array<const char*, 4> kStreamKernelNames{
    "Copy", "Scale", "Add", "Triad"};

/// The four STREAM operations as standalone vectorized kernels
/// (#pragma omp simd) over [0, size); run_stream fans them out across
/// the thread pool. All are elementwise, so each is bitwise-identical to
/// its `_scalar` reference twin (vectorization disabled) — the parity
/// tests pin that.
void stream_copy(double* c, const double* a, std::size_t size);
void stream_scale(double* b, const double* c, double scalar,
                  std::size_t size);
void stream_add(double* c, const double* a, const double* b,
                std::size_t size);
void stream_triad(double* a, const double* b, const double* c, double scalar,
                  std::size_t size);
void stream_copy_scalar(double* c, const double* a, std::size_t size);
void stream_scale_scalar(double* b, const double* c, double scalar,
                         std::size_t size);
void stream_add_scalar(double* c, const double* a, const double* b,
                       std::size_t size);
void stream_triad_scalar(double* a, const double* b, const double* c,
                         double scalar, std::size_t size);

StreamResult run_stream(std::size_t n, int threads = 1, int repeats = 3);

[[nodiscard]] double stream_triad_bytes(std::size_t n);

std::string stream_output(const StreamResult& result);

}  // namespace benchpark::benchmarks
