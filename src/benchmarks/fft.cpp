#include "src/benchmarks/fft.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numbers>

#include "src/support/error.hpp"
#include "src/support/parallel.hpp"
#include "src/support/simd.hpp"
#include "src/support/simd_dispatch.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::benchmarks {

namespace {

/// One Stockham radix-2 pass: the stage with block half-length m and
/// stride s maps x[q + s*p] / x[q + s*(p+m)] to y[q + s*2p] / y[q +
/// s*(2p+1)] with twiddle exp(-2 pi i p / (2m)) = master[p * s].
/// `conj_sign` is +1 forward, -1 inverse (conjugated twiddles). The q
/// loop is unit-stride in all six streams — that is the SIMD loop.
inline void stockham_pass(double* yre, double* yim, const double* xre,
                          const double* xim, std::size_t s, std::size_t m,
                          const double* twre, const double* twim,
                          double conj_sign) {
  for (std::size_t p = 0; p < m; ++p) {
    const double wre = twre[p * s];
    const double wim = conj_sign * twim[p * s];
    const double* are = xre + s * p;
    const double* aim = xim + s * p;
    const double* bre = xre + s * (p + m);
    const double* bim = xim + s * (p + m);
    double* y0re = yre + s * (2 * p);
    double* y0im = yim + s * (2 * p);
    double* y1re = yre + s * (2 * p + 1);
    double* y1im = yim + s * (2 * p + 1);
    BENCHPARK_SIMD
    for (std::size_t q = 0; q < s; ++q) {
      const double ar = are[q], ai = aim[q];
      const double br = bre[q], bi = bim[q];
      y0re[q] = ar + br;
      y0im[q] = ai + bi;
      const double tr = ar - br, ti = ai - bi;
      y1re[q] = wre * tr - wim * ti;
      y1im[q] = wre * ti + wim * tr;
    }
  }
}

BENCHPARK_NO_VECTORIZE
void stockham_pass_scalar(double* yre, double* yim, const double* xre,
                          const double* xim, std::size_t s, std::size_t m,
                          const double* twre, const double* twim,
                          double conj_sign) {
  for (std::size_t p = 0; p < m; ++p) {
    const double wre = twre[p * s];
    const double wim = conj_sign * twim[p * s];
    for (std::size_t q = 0; q < s; ++q) {
      const double ar = xre[q + s * p], ai = xim[q + s * p];
      const double br = xre[q + s * (p + m)], bi = xim[q + s * (p + m)];
      yre[q + s * 2 * p] = ar + br;
      yim[q + s * 2 * p] = ai + bi;
      const double tr = ar - br, ti = ai - bi;
      yre[q + s * (2 * p + 1)] = wre * tr - wim * ti;
      yim[q + s * (2 * p + 1)] = wre * ti + wim * tr;
    }
  }
}

using PassFn = void (*)(double*, double*, const double*, const double*,
                        std::size_t, std::size_t, const double*,
                        const double*, double);

void transform_impl(const FftPlan& plan, double* re, double* im,
                    double* scratch_re, double* scratch_im, bool inverse,
                    PassFn pass) {
  const std::size_t n = plan.size();
  const double conj_sign = inverse ? -1.0 : 1.0;
  double* xre = re;
  double* xim = im;
  double* yre = scratch_re;
  double* yim = scratch_im;
  std::size_t s = 1;
  for (std::size_t nn = n; nn > 1; nn /= 2, s *= 2) {
    pass(yre, yim, xre, xim, s, nn / 2, plan.twiddle_re(),
         plan.twiddle_im(), conj_sign);
    std::swap(xre, yre);
    std::swap(xim, yim);
  }
  if (xre != re) {
    std::copy(xre, xre + n, re);
    std::copy(xim, xim + n, im);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    BENCHPARK_SIMD
    for (std::size_t i = 0; i < n; ++i) {
      re[i] *= inv_n;
      im[i] *= inv_n;
    }
  }
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n) {
  if (n < 2 || (n & (n - 1)) != 0) {
    throw Error("FFT length must be a power of two >= 2 (got " +
                std::to_string(n) + ")");
  }
  for (std::size_t nn = n; nn > 1; nn /= 2) ++log2n_;
  tw_re_.resize(n / 2);
  tw_im_.resize(n / 2);
  const double step = -2.0 * std::numbers::pi / static_cast<double>(n);
  for (std::size_t k = 0; k < n / 2; ++k) {
    tw_re_[k] = std::cos(step * static_cast<double>(k));
    tw_im_[k] = std::sin(step * static_cast<double>(k));
  }
}

void fft_transform(const FftPlan& plan, double* re, double* im,
                   double* scratch_re, double* scratch_im, bool inverse) {
  transform_impl(plan, re, im, scratch_re, scratch_im, inverse,
                 &stockham_pass);
}

void fft_transform_scalar(const FftPlan& plan, double* re, double* im,
                          double* scratch_re, double* scratch_im,
                          bool inverse) {
  transform_impl(plan, re, im, scratch_re, scratch_im, inverse,
                 &stockham_pass_scalar);
}

FftResult run_fft(std::size_t n, std::size_t batch, int threads,
                  int repeats) {
  using TransformFn = void (*)(const FftPlan&, double*, double*, double*,
                               double*, bool);
  static const TransformFn kernel = support::select_kernel<TransformFn>(
      &fft_transform, &fft_transform_scalar);

  const FftPlan plan(n);
  std::vector<double> re(batch * n), im(batch * n);
  for (std::size_t t = 0; t < batch; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      re[t * n + i] =
          static_cast<double>((i * 2654435761ULL + t * 97) % 2048) / 1024.0 -
          1.0;
      im[t * n + i] =
          static_cast<double>((i * 40503ULL + t * 131) % 2048) / 1024.0 - 1.0;
    }
  }
  std::vector<double> input_re(re.begin(), re.begin() + n);
  std::vector<double> input_im(im.begin(), im.begin() + n);

  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    support::parallel_for(batch, threads,
                          [&](std::size_t lo, std::size_t hi) {
                            std::vector<double> sre(n), sim(n);
                            for (std::size_t t = lo; t < hi; ++t) {
                              kernel(plan, re.data() + t * n,
                                     im.data() + t * n, sre.data(),
                                     sim.data(), false);
                            }
                          });
  }
  auto stop = std::chrono::steady_clock::now();

  FftResult result;
  result.n = n;
  result.batch = batch;
  result.threads = threads;
  result.elapsed_seconds = std::chrono::duration<double>(stop - start).count();
  const double total_flops = fft_flops(n) * static_cast<double>(batch) *
                             static_cast<double>(repeats);
  result.gflops = result.elapsed_seconds > 0
                      ? total_flops / result.elapsed_seconds / 1e9
                      : 0.0;

  // Round-trip verification on a fresh copy of batch member 0: forward
  // then inverse must reproduce the input within 1e-12 relative error.
  std::vector<double> vre = input_re, vim = input_im, sre(n), sim(n);
  kernel(plan, vre.data(), vim.data(), sre.data(), sim.data(), false);
  kernel(plan, vre.data(), vim.data(), sre.data(), sim.data(), true);
  double norm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    norm = std::max(norm,
                    std::max(std::fabs(input_re[i]), std::fabs(input_im[i])));
  }
  if (norm == 0) norm = 1;
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::fabs(vre[i] - input_re[i]) / norm);
    max_err = std::max(max_err, std::fabs(vim[i] - input_im[i]) / norm);
  }
  result.max_roundtrip_error = max_err;
  result.verified = max_err <= 1e-12;
  return result;
}

double fft_flops(std::size_t n) {
  // The standard radix-2 accounting: 5 n log2(n).
  double dn = static_cast<double>(n);
  return 5.0 * dn * std::log2(dn);
}

double fft_bytes(std::size_t n) {
  // log2(n) passes, each reading and writing split re/im arrays.
  double dn = static_cast<double>(n);
  return 4.0 * dn * sizeof(double) * std::log2(dn);
}

std::string fft_output(const FftResult& result) {
  using support::format_double;
  std::string out;
  out += "FFT n=" + std::to_string(result.n) +
         " batch=" + std::to_string(result.batch) +
         " threads=" + std::to_string(result.threads) + "\n";
  out += "Kernel elapsed: " + format_double(result.elapsed_seconds, 6) +
         " s\n";
  out += "FFT GFLOP/s: " + format_double(result.gflops, 4) + "\n";
  out += "Roundtrip max rel err: " +
         format_double(result.max_roundtrip_error, 3) + "\n";
  if (result.verified) out += "Kernel done\n";
  return out;
}

}  // namespace benchpark::benchmarks
