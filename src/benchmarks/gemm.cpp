#include "src/benchmarks/gemm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/support/parallel.hpp"
#include "src/support/simd.hpp"
#include "src/support/simd_dispatch.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::benchmarks {

namespace {

/// Update one full MR x NR tile of C with the k-panel [kb, ke): load the
/// tile, stream the panel through it in ascending k, store back. The
/// accumulators live in registers for the whole panel; SIMD runs across
/// the NR columns (distinct C elements per lane, no reassociation).
inline void microkernel(double* c, const double* a, const double* b,
                        std::size_t n, std::size_t i0, std::size_t j0,
                        std::size_t kb, std::size_t ke) {
  double acc[kGemmMR][kGemmNR];
  for (std::size_t r = 0; r < kGemmMR; ++r) {
    const double* crow = c + (i0 + r) * n + j0;
    BENCHPARK_SIMD
    for (std::size_t q = 0; q < kGemmNR; ++q) acc[r][q] = crow[q];
  }
  for (std::size_t k = kb; k < ke; ++k) {
    const double* brow = b + k * n + j0;
    for (std::size_t r = 0; r < kGemmMR; ++r) {
      const double av = a[(i0 + r) * n + k];
      BENCHPARK_SIMD
      for (std::size_t q = 0; q < kGemmNR; ++q) acc[r][q] += av * brow[q];
    }
  }
  for (std::size_t r = 0; r < kGemmMR; ++r) {
    double* crow = c + (i0 + r) * n + j0;
    BENCHPARK_SIMD
    for (std::size_t q = 0; q < kGemmNR; ++q) crow[q] = acc[r][q];
  }
}

/// Remainder tiles (rows or columns short of MR x NR): same running
/// accumulator in ascending k, so the addition order stays the naive one.
inline void edge_block(double* c, const double* a, const double* b,
                       std::size_t n, std::size_t i0, std::size_t i1,
                       std::size_t j0, std::size_t j1, std::size_t kb,
                       std::size_t ke) {
  for (std::size_t i = i0; i < i1; ++i) {
    for (std::size_t j = j0; j < j1; ++j) {
      double acc = c[i * n + j];
      for (std::size_t k = kb; k < ke; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
}

/// The blocked GEMM over the row slab [rlo, rhi) — one thread's share.
void gemm_rows(double* c, const double* a, const double* b, std::size_t n,
               std::size_t rlo, std::size_t rhi) {
  std::fill(c + rlo * n, c + rhi * n, 0.0);
  for (std::size_t kb = 0; kb < n; kb += kGemmKC) {
    const std::size_t ke = std::min(kb + kGemmKC, n);
    for (std::size_t jb = 0; jb < n; jb += kGemmNC) {
      const std::size_t je = std::min(jb + kGemmNC, n);
      std::size_t i = rlo;
      for (; i + kGemmMR <= rhi; i += kGemmMR) {
        std::size_t j = jb;
        for (; j + kGemmNR <= je; j += kGemmNR) {
          microkernel(c, a, b, n, i, j, kb, ke);
        }
        if (j < je) edge_block(c, a, b, n, i, i + kGemmMR, j, je, kb, ke);
      }
      if (i < rhi) edge_block(c, a, b, n, i, rhi, jb, je, kb, ke);
    }
  }
}

BENCHPARK_NO_VECTORIZE
void gemm_naive_impl(double* c, const double* a, const double* b,
                     std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      c[i * n + j] = acc;
    }
  }
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void gemm_blocked(double* c, const double* a, const double* b,
                  std::size_t n, int threads) {
  support::parallel_for(n, threads, [&](std::size_t lo, std::size_t hi) {
    gemm_rows(c, a, b, n, lo, hi);
  });
}

void gemm_naive(double* c, const double* a, const double* b, std::size_t n) {
  gemm_naive_impl(c, a, b, n);
}

GemmResult run_gemm(std::size_t n, int threads, int repeats) {
  // Bound once; the repeat loop calls an unconditioned pointer. The scalar
  // fallback is the naive ijk kernel (the parity twin) wrapped to the
  // blocked signature.
  using GemmFn = void (*)(double*, const double*, const double*, std::size_t,
                          int);
  static const GemmFn kernel = support::select_kernel<GemmFn>(
      &gemm_blocked,
      [](double* c, const double* a, const double* b, std::size_t size,
         int /*threads*/) { gemm_naive(c, a, b, size); });

  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a[i * n + j] =
          static_cast<double>((i * 31 + j * 7 + 3) % 512) / 512.0 - 0.5;
      b[i * n + j] =
          static_cast<double>((i * 17 + j * 13 + 5) % 512) / 512.0 - 0.5;
    }
  }

  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    kernel(c.data(), a.data(), b.data(), n, threads);
  }
  auto stop = std::chrono::steady_clock::now();

  GemmResult result;
  result.n = n;
  result.threads = threads;
  result.elapsed_seconds = std::chrono::duration<double>(stop - start).count();
  result.gflops = result.elapsed_seconds > 0
                      ? gemm_flops(n) * repeats / result.elapsed_seconds / 1e9
                      : 0.0;

  // Freivalds verification: C r == A (B r) for a deterministic pseudo-random
  // vector r — O(n^2) instead of re-running the O(n^3) product.
  std::vector<double> r(n), br(n), abr(n), cr(n);
  for (std::size_t j = 0; j < n; ++j) {
    r[j] = static_cast<double>(splitmix64(j) % 1024) / 1024.0 + 0.5;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0;
    for (std::size_t j = 0; j < n; ++j) s += b[i * n + j] * r[j];
    br[i] = s;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double sa = 0, sc = 0;
    for (std::size_t j = 0; j < n; ++j) {
      sa += a[i * n + j] * br[j];
      sc += c[i * n + j] * r[j];
    }
    abr[i] = sa;
    cr[i] = sc;
  }
  result.verified = true;
  double scale = static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fabs(cr[i] - abr[i]) > 1e-9 * scale * (1.0 + std::fabs(abr[i]))) {
      result.verified = false;
      break;
    }
  }
  double checksum = 0;
  for (std::size_t i = 0; i < n; ++i) checksum += c[i * n + i];
  result.checksum = checksum;
  return result;
}

double gemm_flops(std::size_t n) {
  double dn = static_cast<double>(n);
  return 2.0 * dn * dn * dn;
}

double gemm_bytes(std::size_t n) {
  // A and B streamed once per k-panel pass, C read+written once; the
  // model charges the ideal fully-blocked traffic: 3 n^2 doubles.
  double dn = static_cast<double>(n);
  return 3.0 * dn * dn * sizeof(double);
}

std::string gemm_output(const GemmResult& result) {
  using support::format_double;
  std::string out;
  out += "GEMM n=" + std::to_string(result.n) +
         " threads=" + std::to_string(result.threads) +
         " blocking KC=" + std::to_string(kGemmKC) +
         " NC=" + std::to_string(kGemmNC) +
         " MR=" + std::to_string(kGemmMR) +
         " NR=" + std::to_string(kGemmNR) + "\n";
  out += "Kernel elapsed: " + format_double(result.elapsed_seconds, 6) +
         " s\n";
  out += "GEMM GFLOP/s: " + format_double(result.gflops, 4) + "\n";
  if (result.verified) out += "Kernel done\n";
  return out;
}

}  // namespace benchpark::benchmarks
