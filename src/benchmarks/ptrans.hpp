// HPCC-style PTRANS: out-of-place transpose B = A^T of an n x n double
// matrix — a pure memory benchmark stressing strided access.
//
// The optimized path is tiled: the matrix is walked in kPtransTile x
// kPtransTile blocks; each block is read row-wise (unit stride) into a
// local staging tile and written back transposed, again row-wise in the
// destination (unit stride). Both the reads and the writes are therefore
// contiguous and SIMD-friendly; only the block walk itself is strided.
// The serial path additionally recurses cache-obliviously (split the
// larger dimension in half until a block fits the leaf tile), so every
// cache level is blocked for without knowing its size. Threading splits
// the rows of A across the pool.
//
// Transpose moves bits, never arithmetic, so the tiled kernel is
// trivially bitwise-identical to the naive scalar twin — the parity test
// pins that.
#pragma once

#include <cstddef>
#include <string>

namespace benchpark::benchmarks {

/// Leaf tile edge (doubles): 32 x 32 x 8 B = 8 KiB, comfortably L1.
inline constexpr std::size_t kPtransTile = 32;

/// Optimized transpose: cache-oblivious recursion to kPtransTile leaves
/// when threads <= 1, row-slab parallel tiling otherwise.
void ptrans_tiled(double* b, const double* a, std::size_t n,
                  int threads = 1);

/// Scalar reference twin (vectorization disabled, naive double loop).
void ptrans_naive(double* b, const double* a, std::size_t n);

struct PtransResult {
  std::size_t n = 0;
  int threads = 1;
  double elapsed_seconds = 0;
  double bandwidth_gbs = 0;
  double checksum = 0;
  bool verified = false;
};

/// Run the tiled transpose `repeats` times (ping-ponging A <-> B so every
/// pass does real work) and verify element-wise plus by involution: an
/// even repeat count must restore the original matrix exactly.
PtransResult run_ptrans(std::size_t n, int threads = 1, int repeats = 2);

/// Cost-model input: bytes moved by one transpose (read + write).
[[nodiscard]] double ptrans_bytes(std::size_t n);

std::string ptrans_output(const PtransResult& result);

}  // namespace benchpark::benchmarks
