#include "src/benchmarks/saxpy.hpp"

#include <chrono>
#include <cmath>
#include <string>

#include "src/support/parallel.hpp"
#include "src/support/simd.hpp"
#include "src/support/simd_dispatch.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::benchmarks {

void saxpy_kernel(float* r, const float* x, const float* y,
                  std::size_t size, float a) {
  BENCHPARK_SIMD
  for (std::size_t i = 0; i < size; ++i) {
    r[i] = a * x[i] + y[i];
  }
}

BENCHPARK_NO_VECTORIZE
void saxpy_kernel_scalar(float* r, const float* x, const float* y,
                         std::size_t size, float a) {
  for (std::size_t i = 0; i < size; ++i) {
    r[i] = a * x[i] + y[i];
  }
}

SaxpyResult run_saxpy(std::size_t n, int threads, int repeats) {
  // Bound once; the repeat loop calls through an unconditioned pointer.
  static const auto kernel =
      support::select_kernel(&saxpy_kernel, &saxpy_kernel_scalar);
  std::vector<float> x(n), y(n), r(n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(i % 1024) * 0.001f;
    y[i] = 1.0f - x[i];
  }
  const float a = 2.0f;

  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    support::parallel_for(n, threads, [&](std::size_t begin, std::size_t end) {
      kernel(r.data() + begin, x.data() + begin, y.data() + begin,
             end - begin, a);
    });
  }
  auto stop = std::chrono::steady_clock::now();

  SaxpyResult result;
  result.n = n;
  result.threads = threads;
  result.elapsed_seconds =
      std::chrono::duration<double>(stop - start).count();
  result.gflops = result.elapsed_seconds > 0
                      ? 2.0 * static_cast<double>(n) * repeats /
                            result.elapsed_seconds / 1e9
                      : 0.0;

  result.verified = true;
  float checksum = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    float expected = a * x[i] + y[i];
    if (std::fabs(r[i] - expected) > 1e-5f) result.verified = false;
    checksum += r[i];
  }
  result.checksum = checksum;
  return result;
}

double saxpy_flops(std::size_t n) { return 2.0 * static_cast<double>(n); }

double saxpy_bytes(std::size_t n) {
  // Two loads + one store of float.
  return 12.0 * static_cast<double>(n);
}

std::string saxpy_output(const SaxpyResult& result) {
  std::string out;
  out += "saxpy: problem size n=" + std::to_string(result.n) +
         " threads=" + std::to_string(result.threads) + "\n";
  out += "Kernel elapsed: " +
         support::format_double(result.elapsed_seconds, 6) + " s\n";
  out += "Kernel GFLOP/s: " + support::format_double(result.gflops, 4) + "\n";
  if (result.verified) out += "Kernel done\n";
  return out;
}

}  // namespace benchpark::benchmarks
