// HPCC-style DGEMM: C = A * B for dense square n x n double matrices.
//
// The optimized path is a classic three-level blocked GEMM: k is cut into
// KC-deep panels (so the working set of one panel pass fits in L2), j into
// NC-wide column blocks, and the innermost compute is an MR x NR
// register-tiled microkernel that keeps a tile of C in registers while
// streaming one k-panel through it, SIMD across the NR columns. Threading
// splits the rows of C across the pool (disjoint output, no atomics).
//
// Bit-exactness contract with the naive scalar twin: every C element is a
// single running accumulator updated in ascending-k order — the microkernel
// loads C, adds the panel's products for k = kb..kb+KC-1 in order, and
// stores back, so across ascending panels the addition sequence is exactly
// the naive ijk loop's. SIMD lanes hold distinct (i, j) elements (no
// reassociation), and the baseline x86-64 target has no FMA contraction,
// so the parity test pins gemm_blocked == gemm_naive bitwise.
#pragma once

#include <cstddef>
#include <string>

namespace benchpark::benchmarks {

/// Blocking parameters (exposed for the docs and the parity tests).
inline constexpr std::size_t kGemmKC = 256;  // k-panel depth (L2 blocking)
inline constexpr std::size_t kGemmNC = 128;  // j-block width (L2 blocking)
inline constexpr std::size_t kGemmMR = 4;    // microkernel rows of C
inline constexpr std::size_t kGemmNR = 8;    // microkernel cols of C

/// Optimized blocked/register-tiled/SIMD GEMM; overwrites C.
void gemm_blocked(double* c, const double* a, const double* b,
                  std::size_t n, int threads = 1);

/// Scalar reference twin: textbook ijk with one accumulator per element,
/// vectorization disabled. The parity test pins blocked == naive bitwise.
void gemm_naive(double* c, const double* a, const double* b, std::size_t n);

struct GemmResult {
  std::size_t n = 0;
  int threads = 1;
  double elapsed_seconds = 0;
  double gflops = 0;
  double checksum = 0;  // guards against dead-code elimination
  bool verified = false;
};

/// Run the blocked kernel `repeats` times on deterministic inputs and
/// verify with a Freivalds check (C r == A (B r) for a random vector r —
/// O(n^2), catches any wrong element with high probability).
GemmResult run_gemm(std::size_t n, int threads = 1, int repeats = 1);

/// Cost-model inputs for the simulated systems.
[[nodiscard]] double gemm_flops(std::size_t n);
[[nodiscard]] double gemm_bytes(std::size_t n);

/// Render the benchmark's stdout ("Kernel done" is the success string).
std::string gemm_output(const GemmResult& result);

}  // namespace benchpark::benchmarks
