#include "src/benchmarks/stream.hpp"

#include <chrono>
#include <cmath>
#include <vector>

#include "src/support/parallel.hpp"
#include "src/support/simd.hpp"
#include "src/support/simd_dispatch.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::benchmarks {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

// ----------------------------------------------------------- kernels

void stream_copy(double* c, const double* a, std::size_t size) {
  BENCHPARK_SIMD
  for (std::size_t i = 0; i < size; ++i) c[i] = a[i];
}

void stream_scale(double* b, const double* c, double scalar,
                  std::size_t size) {
  BENCHPARK_SIMD
  for (std::size_t i = 0; i < size; ++i) b[i] = scalar * c[i];
}

void stream_add(double* c, const double* a, const double* b,
                std::size_t size) {
  BENCHPARK_SIMD
  for (std::size_t i = 0; i < size; ++i) c[i] = a[i] + b[i];
}

void stream_triad(double* a, const double* b, const double* c, double scalar,
                  std::size_t size) {
  BENCHPARK_SIMD
  for (std::size_t i = 0; i < size; ++i) a[i] = b[i] + scalar * c[i];
}

BENCHPARK_NO_VECTORIZE
void stream_copy_scalar(double* c, const double* a, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) c[i] = a[i];
}

BENCHPARK_NO_VECTORIZE
void stream_scale_scalar(double* b, const double* c, double scalar,
                         std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) b[i] = scalar * c[i];
}

BENCHPARK_NO_VECTORIZE
void stream_add_scalar(double* c, const double* a, const double* b,
                       std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) c[i] = a[i] + b[i];
}

BENCHPARK_NO_VECTORIZE
void stream_triad_scalar(double* a, const double* b, const double* c,
                         double scalar, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) a[i] = b[i] + scalar * c[i];
}

StreamResult run_stream(std::size_t n, int threads, int repeats) {
  // All four operations bound once through the SIMD dispatcher; the
  // timed loops below call unconditioned pointers.
  static const auto copy_fn =
      support::select_kernel(&stream_copy, &stream_copy_scalar);
  static const auto scale_fn =
      support::select_kernel(&stream_scale, &stream_scale_scalar);
  static const auto add_fn =
      support::select_kernel(&stream_add, &stream_add_scalar);
  static const auto triad_fn =
      support::select_kernel(&stream_triad, &stream_triad_scalar);
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.0);
  const double scalar = 3.0;

  StreamResult result;
  result.n = n;
  result.threads = threads;
  std::array<double, 4> best_seconds;
  best_seconds.fill(1e30);

  for (int rep = 0; rep < repeats; ++rep) {
    // Copy: c = a
    auto t0 = std::chrono::steady_clock::now();
    support::parallel_for(n, threads, [&](std::size_t lo, std::size_t hi) {
      copy_fn(c.data() + lo, a.data() + lo, hi - lo);
    });
    best_seconds[0] = std::min(best_seconds[0], seconds_since(t0));

    // Scale: b = s * c
    t0 = std::chrono::steady_clock::now();
    support::parallel_for(n, threads, [&](std::size_t lo, std::size_t hi) {
      scale_fn(b.data() + lo, c.data() + lo, scalar, hi - lo);
    });
    best_seconds[1] = std::min(best_seconds[1], seconds_since(t0));

    // Add: c = a + b
    t0 = std::chrono::steady_clock::now();
    support::parallel_for(n, threads, [&](std::size_t lo, std::size_t hi) {
      add_fn(c.data() + lo, a.data() + lo, b.data() + lo, hi - lo);
    });
    best_seconds[2] = std::min(best_seconds[2], seconds_since(t0));

    // Triad: a = b + s * c
    t0 = std::chrono::steady_clock::now();
    support::parallel_for(n, threads, [&](std::size_t lo, std::size_t hi) {
      triad_fn(a.data() + lo, b.data() + lo, c.data() + lo, scalar,
               hi - lo);
    });
    best_seconds[3] = std::min(best_seconds[3], seconds_since(t0));
  }

  const double nbytes = static_cast<double>(n) * sizeof(double);
  const std::array<double, 4> bytes_moved{2 * nbytes, 2 * nbytes, 3 * nbytes,
                                          3 * nbytes};
  for (int k = 0; k < 4; ++k) {
    result.bandwidth_gbs[static_cast<std::size_t>(k)] =
        best_seconds[static_cast<std::size_t>(k)] > 0
            ? bytes_moved[static_cast<std::size_t>(k)] /
                  best_seconds[static_cast<std::size_t>(k)] / 1e9
            : 0.0;
  }

  // Verification follows the reference STREAM: recompute expected values.
  // After `repeats` iterations: each iteration does c=a, b=s*c, c=a+b,
  // a=b+s*c starting from that iteration's a.
  double ea = 1.0, eb = 2.0, ec = 0.0;
  for (int rep = 0; rep < repeats; ++rep) {
    ec = ea;
    eb = scalar * ec;
    ec = ea + eb;
    ea = eb + scalar * ec;
  }
  result.verified = std::fabs(a[0] - ea) < 1e-8 * std::fabs(ea) &&
                    std::fabs(b[n / 2] - eb) < 1e-8 * std::fabs(eb) &&
                    std::fabs(c[n - 1] - ec) < 1e-8 * std::fabs(ec);
  return result;
}

double stream_triad_bytes(std::size_t n) {
  return 3.0 * static_cast<double>(n) * sizeof(double);
}

std::string stream_output(const StreamResult& result) {
  std::string out = "STREAM array size=" + std::to_string(result.n) +
                    " threads=" + std::to_string(result.threads) + "\n";
  for (std::size_t k = 0; k < 4; ++k) {
    out += std::string(kStreamKernelNames[k]) + ": " +
           benchpark::support::format_double(result.bandwidth_gbs[k], 5) +
           " GB/s\n";
  }
  out += result.verified ? "Solution Validates\n" : "Validation FAILED\n";
  return out;
}

}  // namespace benchpark::benchmarks
