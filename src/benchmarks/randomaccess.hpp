// HPCC-style RandomAccess (GUPS): XOR-update a large table at
// pseudo-random locations, measured in giga-updates per second.
//
// The update stream is counter-based: update j applies value
// v = splitmix64(j) at index v & (size - 1). Because splitmix64 is a
// bijection of the counter and XOR is commutative and associative, ANY
// partition of the update range — batched, reordered, or split across
// threads — produces the bitwise-identical final table, which is what
// makes the optimized path's reordering legal and the parity test exact.
//
// The optimized path pipelines updates in batches of kRaBatch: it first
// generates the batch's values and issues prefetches for all their table
// lines, then applies the XORs — by the time the applies run, the random
// lines are (ideally) in flight or resident, hiding the per-update
// memory latency that defines this benchmark. The scalar twin is the
// textbook one-update-at-a-time loop. With threads > 1 the range is
// chunked and updates go through std::atomic_ref fetch_xor (relaxed) —
// same final table, by commutativity.
//
// Verification is the HPCC involution check: applying the identical
// update stream a second time cancels every XOR, so the table must
// return to its initial state table[i] == i exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace benchpark::benchmarks {

/// Updates generated and prefetched ahead of the apply loop.
inline constexpr std::size_t kRaBatch = 64;

/// splitmix64 — the counter-based value stream (public for tests).
[[nodiscard]] std::uint64_t ra_value(std::uint64_t counter);

/// Apply updates [first, first + count) to table[0, size), size a power
/// of two. Batched + prefetched; threads chunk the counter range and
/// update atomically.
void randomaccess_update(std::uint64_t* table, std::size_t size,
                         std::uint64_t first, std::uint64_t count,
                         int threads = 1);

/// Scalar reference twin: one update at a time, no batching, no atomics.
void randomaccess_update_scalar(std::uint64_t* table, std::size_t size,
                                std::uint64_t first, std::uint64_t count);

struct RandomAccessResult {
  std::size_t table_size = 0;   // entries (power of two)
  std::uint64_t updates = 0;    // updates applied in the timed phase
  int threads = 1;
  double elapsed_seconds = 0;
  double gups = 0;              // giga-updates per second
  std::uint64_t checksum = 0;   // XOR of the final table
  bool verified = false;
};

/// Time `updates` (default 4x table size) XOR updates against a 2^log2_size
/// table, then verify by involution: re-applying the same stream must
/// restore table[i] == i for every i.
RandomAccessResult run_randomaccess(std::size_t log2_size, int threads = 1,
                                    std::uint64_t updates = 0);

/// Cost-model input: bytes touched (read-modify-write per update).
[[nodiscard]] double randomaccess_bytes(std::uint64_t updates);

std::string randomaccess_output(const RandomAccessResult& result);

}  // namespace benchpark::benchmarks
