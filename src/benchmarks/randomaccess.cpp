#include "src/benchmarks/randomaccess.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "src/support/parallel.hpp"
#include "src/support/simd.hpp"
#include "src/support/simd_dispatch.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::benchmarks {

namespace {

inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 0);
#else
  (void)p;
#endif
}

/// Batched, prefetched update loop over counters [lo, hi). Generating the
/// whole batch and prefetching every target line before the first XOR
/// keeps kRaBatch independent cache misses in flight instead of one.
template <bool Atomic>
void update_batched(std::uint64_t* table, std::uint64_t mask,
                    std::uint64_t lo, std::uint64_t hi) {
  std::uint64_t vals[kRaBatch];
  for (std::uint64_t j = lo; j < hi;) {
    const std::uint64_t b = std::min<std::uint64_t>(kRaBatch, hi - j);
    for (std::uint64_t k = 0; k < b; ++k) {
      vals[k] = ra_value(j + k);
      prefetch_write(&table[vals[k] & mask]);
    }
    for (std::uint64_t k = 0; k < b; ++k) {
      if constexpr (Atomic) {
        std::atomic_ref<std::uint64_t>(table[vals[k] & mask])
            .fetch_xor(vals[k], std::memory_order_relaxed);
      } else {
        table[vals[k] & mask] ^= vals[k];
      }
    }
    j += b;
  }
}

BENCHPARK_NO_VECTORIZE
void update_scalar_impl(std::uint64_t* table, std::uint64_t mask,
                        std::uint64_t lo, std::uint64_t hi) {
  for (std::uint64_t j = lo; j < hi; ++j) {
    const std::uint64_t v = ra_value(j);
    table[v & mask] ^= v;
  }
}

}  // namespace

std::uint64_t ra_value(std::uint64_t counter) {
  std::uint64_t x = counter + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void randomaccess_update(std::uint64_t* table, std::size_t size,
                         std::uint64_t first, std::uint64_t count,
                         int threads) {
  const std::uint64_t mask = static_cast<std::uint64_t>(size) - 1;
  if (threads <= 1) {
    update_batched<false>(table, mask, first, first + count);
    return;
  }
  support::parallel_for(
      static_cast<std::size_t>(count), threads,
      [&](std::size_t lo, std::size_t hi) {
        update_batched<true>(table, mask, first + lo, first + hi);
      });
}

void randomaccess_update_scalar(std::uint64_t* table, std::size_t size,
                                std::uint64_t first, std::uint64_t count) {
  update_scalar_impl(table, static_cast<std::uint64_t>(size) - 1, first,
                     first + count);
}

RandomAccessResult run_randomaccess(std::size_t log2_size, int threads,
                                    std::uint64_t updates) {
  using UpdateFn =
      void (*)(std::uint64_t*, std::size_t, std::uint64_t, std::uint64_t, int);
  static const UpdateFn kernel = support::select_kernel<UpdateFn>(
      &randomaccess_update,
      [](std::uint64_t* table, std::size_t size, std::uint64_t first,
         std::uint64_t count, int /*threads*/) {
        randomaccess_update_scalar(table, size, first, count);
      });

  const std::size_t size = std::size_t{1} << log2_size;
  if (updates == 0) updates = 4 * static_cast<std::uint64_t>(size);
  std::vector<std::uint64_t> table(size);
  for (std::size_t i = 0; i < size; ++i) {
    table[i] = static_cast<std::uint64_t>(i);
  }

  auto start = std::chrono::steady_clock::now();
  kernel(table.data(), size, 0, updates, threads);
  auto stop = std::chrono::steady_clock::now();

  RandomAccessResult result;
  result.table_size = size;
  result.updates = updates;
  result.threads = threads;
  result.elapsed_seconds = std::chrono::duration<double>(stop - start).count();
  result.gups = result.elapsed_seconds > 0
                    ? static_cast<double>(updates) /
                          result.elapsed_seconds / 1e9
                    : 0.0;

  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < size; ++i) checksum ^= table[i];
  result.checksum = checksum;

  // Involution check: XOR-ing the identical stream in again cancels every
  // update, so the table must return to its initial state exactly.
  kernel(table.data(), size, 0, updates, threads);
  result.verified = true;
  for (std::size_t i = 0; i < size; ++i) {
    if (table[i] != static_cast<std::uint64_t>(i)) {
      result.verified = false;
      break;
    }
  }
  return result;
}

double randomaccess_bytes(std::uint64_t updates) {
  // Each update is a read-modify-write of one 8-byte entry.
  return 16.0 * static_cast<double>(updates);
}

std::string randomaccess_output(const RandomAccessResult& result) {
  using support::format_double;
  std::string out;
  out += "RandomAccess table entries=" + std::to_string(result.table_size) +
         " updates=" + std::to_string(result.updates) +
         " threads=" + std::to_string(result.threads) + "\n";
  out += "Kernel elapsed: " + format_double(result.elapsed_seconds, 6) +
         " s\n";
  out += "RandomAccess GUP/s: " + format_double(result.gups, 5) + "\n";
  if (result.verified) out += "Kernel done\n";
  return out;
}

}  // namespace benchpark::benchmarks
