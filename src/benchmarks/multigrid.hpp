// AMG2023 proxy: a real geometric multigrid solver for the 2-D Poisson
// problem  -Δu = f  on the unit square with homogeneous Dirichlet
// boundaries.
//
// AMG2023 exercises hypre's BoomerAMG through a setup phase (building the
// grid hierarchy) and a solve phase (V-cycles to convergence), and reports
// both as figures of merit. This solver reproduces those phases with a
// matrix-free 5-point stencil hierarchy: weighted-Jacobi smoothing,
// full-weighting restriction, bilinear prolongation, and an exact-enough
// coarse solve — textbook multigrid with O(N) work per cycle and
// h-independent convergence (~0.1 residual reduction per V-cycle), which
// is the property AMG benchmarks measure.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace benchpark::benchmarks {

struct MultigridOptions {
  /// Interior grid points per dimension on the finest level (n x n).
  std::size_t n = 255;
  double tolerance = 1e-8;   // relative residual reduction target
  int max_cycles = 50;
  int pre_smooth = 2;
  int post_smooth = 2;
  int threads = 1;
};

struct MultigridResult {
  std::size_t n = 0;
  int levels = 0;
  int cycles = 0;
  bool converged = false;
  double setup_seconds = 0;
  double solve_seconds = 0;
  double initial_residual = 0;
  double final_residual = 0;
  /// Discretization error vs. the manufactured solution (max-norm).
  double solution_error = 0;
  /// FOMs the AMG benchmark family reports: degrees of freedom per second.
  [[nodiscard]] double setup_fom() const {
    return setup_seconds > 0
               ? static_cast<double>(n) * static_cast<double>(n) /
                     setup_seconds
               : 0;
  }
  [[nodiscard]] double solve_fom() const {
    return solve_seconds > 0
               ? static_cast<double>(n) * static_cast<double>(n) * cycles /
                     solve_seconds
               : 0;
  }
};

/// Solve -Δu = f with f from the manufactured solution
/// u = sin(πx)·sin(πy); returns timings, convergence and error data.
MultigridResult solve_poisson_multigrid(const MultigridOptions& options);

// -- vectorized inner-loop kernels ----------------------------------------
// One interior grid row each; `*_row` pointers address the start of row i
// in the (n+2)-wide halo layout (element j of the row is column j), and
// `stride` is the row pitch (n + 2). Exposed so the parity tests can pin
// vectorized against scalar behavior.

/// Weighted-Jacobi update of row columns [1, n] (#pragma omp simd).
/// Elementwise — bitwise-identical to the `_scalar` twin.
void multigrid_smooth_row(double* next_row, const double* u_row,
                          const double* f_row, std::size_t n,
                          std::size_t stride, double h2, double omega);
void multigrid_smooth_row_scalar(double* next_row, const double* u_row,
                                 const double* f_row, std::size_t n,
                                 std::size_t stride, double h2, double omega);

/// r = f - Au over row columns [1, n]; returns the row's squared-residual
/// sum. Manually 4-wide unrolled: the stores are bitwise-identical to the
/// scalar twin, the returned sum reassociates across the four lanes, so
/// parity is to relative tolerance.
double multigrid_residual_row(double* r_row, const double* u_row,
                              const double* f_row, std::size_t n,
                              std::size_t stride, double inv_h2);
double multigrid_residual_row_scalar(double* r_row, const double* u_row,
                                     const double* f_row, std::size_t n,
                                     std::size_t stride, double inv_h2);

/// Cost-model inputs: flops/bytes for one V-cycle on an n x n fine grid.
[[nodiscard]] double multigrid_cycle_flops(std::size_t n);
[[nodiscard]] double multigrid_cycle_bytes(std::size_t n);

/// Render stdout the way AMG2023 prints its figures of merit.
std::string multigrid_output(const MultigridResult& result);

}  // namespace benchpark::benchmarks
