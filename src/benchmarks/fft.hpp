// HPCC-style FFT: batched 1-D complex transforms, radix-2 Stockham
// autosort, split re/im arrays, shared precomputed twiddle table.
//
// Stockham reorders as it computes, so there is no bit-reversal pass and
// every stage reads and writes with unit stride over the q (intra-block)
// index — that inner loop is the SIMD loop. The twiddle factors for every
// stage are slices of one master table (exp(-2*pi*i*k/n) for k < n/2,
// indexed k = p * stride), computed once per plan and shared by all
// batch members and threads. The transform ping-pongs between the data
// and a caller-provided scratch buffer (log2(n) passes), ending back in
// the data arrays.
//
// Each butterfly output is written exactly once per stage from two inputs
// — elementwise, no reductions — so the vectorized and scalar twins agree
// to round-off; the parity test pins them within 1e-12 relative error and
// the round-trip (forward then inverse) reproduces the input to the same
// tolerance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace benchpark::benchmarks {

/// Precomputed state for length-n transforms (n a power of two >= 2).
/// Immutable after construction; safe to share across threads.
class FftPlan {
public:
  /// Throws Error unless n is a power of two >= 2.
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] int stages() const { return log2n_; }
  [[nodiscard]] const double* twiddle_re() const { return tw_re_.data(); }
  [[nodiscard]] const double* twiddle_im() const { return tw_im_.data(); }

private:
  std::size_t n_ = 0;
  int log2n_ = 0;
  std::vector<double> tw_re_;  // cos(-2 pi k / n), k < n/2
  std::vector<double> tw_im_;  // sin(-2 pi k / n), k < n/2
};

/// One in-place transform of re/im[0, n) using scratch of the same length
/// for the ping-pong; `inverse` conjugates the twiddles and scales by 1/n.
void fft_transform(const FftPlan& plan, double* re, double* im,
                   double* scratch_re, double* scratch_im,
                   bool inverse = false);

/// Scalar reference twin (vectorization disabled, same algorithm).
void fft_transform_scalar(const FftPlan& plan, double* re, double* im,
                          double* scratch_re, double* scratch_im,
                          bool inverse = false);

struct FftResult {
  std::size_t n = 0;        // transform length
  std::size_t batch = 0;    // transforms per repeat
  int threads = 1;
  double elapsed_seconds = 0;
  double gflops = 0;        // 5 n log2(n) flops per transform
  double max_roundtrip_error = 0;  // relative, forward + inverse
  bool verified = false;
};

/// Run `batch` forward transforms per repeat (threads split the batch),
/// then verify by round-tripping one batch member: forward + inverse must
/// reproduce the input within 1e-12 relative error.
FftResult run_fft(std::size_t n, std::size_t batch = 8, int threads = 1,
                  int repeats = 1);

/// Cost-model inputs (per transform).
[[nodiscard]] double fft_flops(std::size_t n);
[[nodiscard]] double fft_bytes(std::size_t n);

std::string fft_output(const FftResult& result);

}  // namespace benchpark::benchmarks
