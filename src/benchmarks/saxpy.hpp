// The saxpy micro-benchmark (Section 4.1, Figure 7): a single kernel
// "ported to the target architecture". This is the real, runnable kernel;
// the simulated runtime uses the cost functions below to model it on
// systems we do not have.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace benchpark::benchmarks {

/// Figure 7, verbatim semantics: r[i] = A * x[i] + y[i]. Vectorized
/// (#pragma omp simd); elementwise, so results are bitwise-identical to
/// the scalar reference below.
void saxpy_kernel(float* r, const float* x, const float* y,
                  std::size_t size, float a = 2.0f);

/// Scalar reference twin (vectorization disabled); the parity test pins
/// saxpy_kernel == saxpy_kernel_scalar bitwise.
void saxpy_kernel_scalar(float* r, const float* x, const float* y,
                         std::size_t size, float a = 2.0f);

struct SaxpyResult {
  std::size_t n = 0;
  int threads = 1;
  double elapsed_seconds = 0;
  double gflops = 0;
  float checksum = 0;  // guards against dead-code elimination
  bool verified = false;
};

/// Run the kernel `repeats` times on freshly initialized arrays and verify
/// the result element-wise.
SaxpyResult run_saxpy(std::size_t n, int threads = 1, int repeats = 1);

/// Cost model inputs for the simulated systems.
[[nodiscard]] double saxpy_flops(std::size_t n);
[[nodiscard]] double saxpy_bytes(std::size_t n);

/// Render the benchmark's stdout the way the real binary prints it
/// ("Kernel done" is the success string from Figure 8).
std::string saxpy_output(const SaxpyResult& result);

}  // namespace benchpark::benchmarks
