#include "src/benchmarks/ptrans.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "src/support/parallel.hpp"
#include "src/support/simd.hpp"
#include "src/support/simd_dispatch.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::benchmarks {

namespace {

/// Transpose the block a[i0:i1, j0:j1] into b[j0:j1, i0:i1] through an
/// L1-resident staging tile: the source is read with unit stride, the
/// transpose happens inside the tile, and the destination is written with
/// unit stride. Handles ragged edges (ih, jh <= kPtransTile).
inline void leaf_transpose(double* b, const double* a, std::size_t n,
                           std::size_t i0, std::size_t i1, std::size_t j0,
                           std::size_t j1) {
  double tile[kPtransTile][kPtransTile];
  const std::size_t ih = i1 - i0;
  const std::size_t jh = j1 - j0;
  for (std::size_t ti = 0; ti < ih; ++ti) {
    const double* arow = a + (i0 + ti) * n + j0;
    BENCHPARK_SIMD
    for (std::size_t tj = 0; tj < jh; ++tj) tile[tj][ti] = arow[tj];
  }
  for (std::size_t tj = 0; tj < jh; ++tj) {
    double* brow = b + (j0 + tj) * n + i0;
    BENCHPARK_SIMD
    for (std::size_t ti = 0; ti < ih; ++ti) brow[ti] = tile[tj][ti];
  }
}

/// Cache-oblivious recursion: halve the longer edge until the block fits
/// the leaf tile, so every cache level sees blocked traffic.
void transpose_recursive(double* b, const double* a, std::size_t n,
                         std::size_t i0, std::size_t i1, std::size_t j0,
                         std::size_t j1) {
  if (i1 - i0 <= kPtransTile && j1 - j0 <= kPtransTile) {
    leaf_transpose(b, a, n, i0, i1, j0, j1);
    return;
  }
  if (i1 - i0 >= j1 - j0) {
    const std::size_t mid = i0 + (i1 - i0) / 2;
    transpose_recursive(b, a, n, i0, mid, j0, j1);
    transpose_recursive(b, a, n, mid, i1, j0, j1);
  } else {
    const std::size_t mid = j0 + (j1 - j0) / 2;
    transpose_recursive(b, a, n, i0, i1, j0, mid);
    transpose_recursive(b, a, n, i0, i1, mid, j1);
  }
}

BENCHPARK_NO_VECTORIZE
void ptrans_naive_impl(double* b, const double* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[j * n + i] = a[i * n + j];
  }
}

}  // namespace

void ptrans_tiled(double* b, const double* a, std::size_t n, int threads) {
  if (threads <= 1) {
    transpose_recursive(b, a, n, 0, n, 0, n);
    return;
  }
  // Threads own disjoint row slabs of A (column slabs of B); within a
  // slab the walk is plain leaf tiling.
  support::parallel_for(n, threads, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i0 = lo; i0 < hi; i0 += kPtransTile) {
      const std::size_t i1 = std::min(i0 + kPtransTile, hi);
      for (std::size_t j0 = 0; j0 < n; j0 += kPtransTile) {
        leaf_transpose(b, a, n, i0, i1, j0,
                       std::min(j0 + kPtransTile, n));
      }
    }
  });
}

void ptrans_naive(double* b, const double* a, std::size_t n) {
  ptrans_naive_impl(b, a, n);
}

PtransResult run_ptrans(std::size_t n, int threads, int repeats) {
  using PtransFn = void (*)(double*, const double*, std::size_t, int);
  static const PtransFn kernel = support::select_kernel<PtransFn>(
      &ptrans_tiled, [](double* b, const double* a, std::size_t size,
                        int /*threads*/) { ptrans_naive(b, a, size); });

  std::vector<double> orig(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    orig[i] = static_cast<double>((i * 2654435761ULL) % 65536) * 0.0625;
  }
  std::vector<double> x = orig, y(n * n, 0.0);

  double* src = x.data();
  double* dst = y.data();
  auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repeats; ++rep) {
    kernel(dst, src, n, threads);
    std::swap(src, dst);
  }
  auto stop = std::chrono::steady_clock::now();
  const double* final_mat = src;  // last write target after the swap

  PtransResult result;
  result.n = n;
  result.threads = threads;
  result.elapsed_seconds = std::chrono::duration<double>(stop - start).count();
  result.bandwidth_gbs =
      result.elapsed_seconds > 0
          ? ptrans_bytes(n) * repeats / result.elapsed_seconds / 1e9
          : 0.0;

  // Element-wise verification: an even repeat count is the involution
  // (T(T(A)) == A) and must restore the input bitwise; an odd count must
  // equal the exact transpose.
  result.verified = true;
  const bool even = repeats % 2 == 0;
  for (std::size_t i = 0; i < n && result.verified; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double expected = even ? orig[i * n + j] : orig[j * n + i];
      if (final_mat[i * n + j] != expected) {
        result.verified = false;
        break;
      }
    }
  }
  double checksum = 0;
  for (std::size_t i = 0; i < n; ++i) checksum += final_mat[i * n + i];
  result.checksum = checksum;
  return result;
}

double ptrans_bytes(std::size_t n) {
  double dn = static_cast<double>(n);
  return 2.0 * dn * dn * sizeof(double);  // read A + write B
}

std::string ptrans_output(const PtransResult& result) {
  using support::format_double;
  std::string out;
  out += "PTRANS n=" + std::to_string(result.n) +
         " threads=" + std::to_string(result.threads) +
         " tile=" + std::to_string(kPtransTile) + "\n";
  out += "Kernel elapsed: " + format_double(result.elapsed_seconds, 6) +
         " s\n";
  out += "PTRANS GB/s: " + format_double(result.bandwidth_gbs, 4) + "\n";
  if (result.verified) out += "Kernel done\n";
  return out;
}

}  // namespace benchpark::benchmarks
