// Thicket-style aggregation and cross-run comparison of traces.
//
// aggregate_spans() folds a trace's span events into per-path statistics
// (path = span names joined "/" along the parent chain, exactly like
// Caliper region paths), splitting wall-clock from modeled time so a
// chaos run's injected latency is visible separately from real elapsed
// time. TraceDiff lines up two aggregations — e.g. a clean and a
// fault-injected install of the same DAG — and reports per-path count
// and duration deltas, which is how a trace "isolates" where retries and
// injected latency landed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace.hpp"
#include "src/support/table.hpp"

namespace benchpark::obs {

/// Aggregated statistics for one span path.
struct SpanStats {
  std::string path;
  std::uint64_t count = 0;   // span events on this path
  double total_us = 0;       // wall-clock inclusive time
  double self_us = 0;        // wall-clock time minus real children
  double modeled_us = 0;     // modeled (simulated/injected) time
};

/// Fold span events into per-path statistics. Orphan parents (ids
/// missing from the trace) root their subtree at the span itself.
[[nodiscard]] std::map<std::string, SpanStats> aggregate_spans(
    const Trace& trace);

/// One path's delta between two runs (a = base, b = other).
struct PathDelta {
  std::string path;
  std::uint64_t count_a = 0, count_b = 0;
  double total_us_a = 0, total_us_b = 0;
  double modeled_us_a = 0, modeled_us_b = 0;

  [[nodiscard]] double delta_us() const { return total_us_b - total_us_a; }
  [[nodiscard]] double modeled_delta_us() const {
    return modeled_us_b - modeled_us_a;
  }
  [[nodiscard]] long long count_delta() const {
    return static_cast<long long>(count_b) - static_cast<long long>(count_a);
  }
};

class TraceDiff {
public:
  TraceDiff(const Trace& base, const Trace& other);

  /// Every path present in either run, sorted by path.
  [[nodiscard]] const std::vector<PathDelta>& rows() const { return rows_; }
  [[nodiscard]] const PathDelta* find(std::string_view path) const;

  /// Paths whose combined (wall + modeled) time grew by at least
  /// `min_delta_us`, sorted worst-first — where the chaos run paid.
  [[nodiscard]] std::vector<PathDelta> regressions(
      double min_delta_us = 0.0) const;

  /// Counter deltas (other minus base) for counters in either run.
  [[nodiscard]] const std::map<std::string, long long>& counter_deltas()
      const {
    return counter_deltas_;
  }

  /// Rendered comparison (rows: paths; columns: count/time per run).
  [[nodiscard]] support::Table to_table() const;

private:
  std::vector<PathDelta> rows_;
  std::map<std::string, long long> counter_deltas_;
};

}  // namespace benchpark::obs
