// Unified tracing & metrics (the observability spine of the paper's
// Caliper -> Adiak -> Thicket pipeline, Section 5 and Fig. 14).
//
// Every subsystem — benchmark kernels, the ThreadPool, the installer's
// per-package build/fetch/retry phases, the binary cache, CI pipelines,
// the batch scheduler, Hubcast mirroring — emits through one API:
//
//   obs::ScopedSpan span("pkg:zlib", "install");     // RAII nested span
//   obs::TraceCollector::global().counter_add("buildcache.hits");
//
// Spans nest via a thread-local stack; work fanned out across the
// ThreadPool inherits the submitting thread's innermost span as its
// parent (ScopedParent), so an install's span tree stays rooted at the
// `install` span no matter which worker built which package. Timestamps
// come from the monotonic clock; *modeled* durations (simulated build
// seconds, injected fault latency) are recorded as pre-measured spans so
// TraceDiff can isolate them from real wall-clock.
//
// Collection is off by default and controlled by BENCHPARK_TRACE:
//
//   BENCHPARK_TRACE=1                 trace everything
//   BENCHPARK_TRACE=install,buildcache   only these categories
//   BENCHPARK_TRACE=0 (or unset)      disabled
//
// The disabled path is zero-cost: one relaxed atomic load, no lock, no
// allocation (guarded by bench/bench_trace.cpp at < 5 ns/op).
//
// Snapshots export to Chrome trace_event JSON (chrome://tracing /
// https://ui.perfetto.dev) and parse back through the YAML/JSON parser.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/yaml/node.hpp"

namespace benchpark::obs {

using SpanArgs = std::vector<std::pair<std::string, std::string>>;

/// One recorded event. Spans carry a duration; instants are points;
/// counters are cumulative values materialized at export time.
struct TraceEvent {
  enum class Phase { span, instant, counter };

  Phase phase = Phase::span;
  std::string name;
  std::string category;
  std::uint64_t id = 0;      // unique span id (spans only; 0 otherwise)
  std::uint64_t parent = 0;  // enclosing span id; 0 = thread root
  std::uint32_t tid = 0;     // small stable per-thread index
  double ts_us = 0;          // start, microseconds since collector epoch
  double dur_us = 0;         // duration in microseconds (spans only)
  /// True for pre-measured spans whose duration is modeled (simulated
  /// build seconds, injected latency), not wall-clock.
  bool modeled = false;
  SpanArgs args;

  [[nodiscard]] double end_us() const { return ts_us + dur_us; }
  [[nodiscard]] const std::string* arg(std::string_view key) const;
};

/// A collected trace: events plus cumulative counters/gauges and
/// Adiak-style run metadata.
struct Trace {
  std::vector<TraceEvent> events;
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::string> metadata;

  /// Events (any phase) with this exact name.
  [[nodiscard]] std::vector<const TraceEvent*> named(
      std::string_view name) const;
  [[nodiscard]] std::size_t count_named(std::string_view name) const;
  /// First span event with this name, or nullptr.
  [[nodiscard]] const TraceEvent* find_span(std::string_view name) const;

  /// Chrome trace_event JSON (single line; spans as "X", instants as
  /// "i", counters/gauges as "C", metadata under "otherData").
  [[nodiscard]] std::string to_chrome_json() const;
  /// Inverse of to_chrome_json, via the YAML/JSON parser.
  static Trace from_chrome_json(std::string_view json);
  static Trace from_chrome_json(const yaml::Node& root);
};

/// Thread-safe trace collector. A process-global instance serves the
/// built-in instrumentation; tests may build standalone collectors.
class TraceCollector {
public:
  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The shared collector every built-in span site uses. Configured once
  /// from BENCHPARK_TRACE on first use; disabled when unset.
  static TraceCollector& global();

  /// Apply a BENCHPARK_TRACE spec: "0"/"off"/"false"/"" disables,
  /// "1"/"on"/"true"/"all" enables everything, anything else is a
  /// comma-separated category whitelist.
  void configure(std::string_view spec);
  /// Enable/disable with no category filter (tests).
  void set_enabled(bool on);
  /// Fast-path check: relaxed atomic load, no lock.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// Slow-path check including the category whitelist.
  [[nodiscard]] bool category_enabled(std::string_view category) const;

  /// Open a span on the calling thread; returns its id, or 0 when
  /// tracing is disabled or the category is filtered out (end_span(0)
  /// is a no-op). The parent is the thread's innermost open span, or
  /// the ambient parent adopted from a submitting thread.
  std::uint64_t begin_span(std::string_view name,
                           std::string_view category = {});
  /// Close the innermost open span, which must be `id` (LIFO); throws
  /// benchpark::Error on mismatched nesting.
  void end_span(std::uint64_t id);
  /// Attach a key/value arg to the innermost open span (no-op when no
  /// span is open on this thread).
  void annotate(std::string_view key, std::string_view value);

  /// Record a pre-measured span of `modeled_seconds` under the current
  /// open span (simulated build time, injected fault latency).
  void emit_span(std::string_view name, std::string_view category,
                 double modeled_seconds, SpanArgs args = {});
  /// Record an instantaneous event under the current open span.
  void instant(std::string_view name, std::string_view category = {},
               SpanArgs args = {});

  /// Exact cumulative counters/gauges (thread-safe).
  void counter_add(std::string_view name, long long delta = 1);
  void gauge_set(std::string_view name, double value);

  /// Adiak-style run metadata attached to every snapshot.
  void attach_metadata(std::string_view key, std::string_view value);

  /// Innermost open span id on this thread (ambient parent included);
  /// 0 when none. Used to hand spans across ThreadPool submission.
  [[nodiscard]] std::uint64_t current_span() const;

  [[nodiscard]] Trace snapshot() const;
  [[nodiscard]] std::size_t event_count() const;
  /// Drop all events/counters/metadata and restart the epoch; the
  /// enabled flag and category filter are preserved.
  void reset();

private:
  friend class ScopedParent;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::string, long long, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::string, std::less<>> metadata_;
  std::vector<std::string> categories_;  // empty = everything
  std::int64_t epoch_ns_ = 0;            // steady-clock origin
};

/// RAII span on the global collector (or an explicit one). Construction
/// on the disabled path costs one relaxed load; no lock, no allocation.
class ScopedSpan {
public:
  explicit ScopedSpan(std::string_view name, std::string_view category = {})
      : collector_(&TraceCollector::global()) {
    if (collector_->enabled()) id_ = collector_->begin_span(name, category);
  }
  ScopedSpan(TraceCollector& collector, std::string_view name,
             std::string_view category = {})
      : collector_(&collector) {
    if (collector_->enabled()) id_ = collector_->begin_span(name, category);
  }
  ~ScopedSpan() {
    if (id_ != 0) collector_->end_span(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span is actually recording (build args only then).
  [[nodiscard]] bool active() const { return id_ != 0; }
  void annotate(std::string_view key, std::string_view value) {
    if (id_ != 0) collector_->annotate(key, value);
  }

private:
  TraceCollector* collector_;
  std::uint64_t id_ = 0;
};

/// Adopt `parent_id` as the ambient parent for spans opened on this
/// thread (the ThreadPool wraps each chunk in one so fanned-out work
/// nests under the submitting thread's span). No-op when parent_id == 0.
class ScopedParent {
public:
  ScopedParent(TraceCollector& collector, std::uint64_t parent_id);
  ~ScopedParent();
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

private:
  bool active_ = false;
};

}  // namespace benchpark::obs
