#include "src/obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"
#include "src/yaml/parser.hpp"

namespace benchpark::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Small stable per-thread index (Chrome trace lanes).
std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t mine = 0;
  if (mine == 0) mine = next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

/// An open span on this thread's stack. Args accumulate locally (no
/// lock) and move into the event at end_span.
struct OpenSpan {
  TraceCollector* collector;
  std::uint64_t id;
  std::uint64_t parent;
  std::string name;
  std::string category;
  std::int64_t start_ns;
  SpanArgs args;
};

thread_local std::vector<OpenSpan> t_stack;
/// Parents adopted from submitting threads (ThreadPool chunk tasks).
thread_local std::vector<std::pair<TraceCollector*, std::uint64_t>> t_ambient;

std::uint64_t innermost_for(const TraceCollector* collector) {
  for (auto it = t_stack.rbegin(); it != t_stack.rend(); ++it) {
    if (it->collector == collector) return it->id;
  }
  for (auto it = t_ambient.rbegin(); it != t_ambient.rend(); ++it) {
    if (it->first == collector) return it->second;
  }
  return 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

void append_args_json(std::string& out, const SpanArgs& args) {
  out += "\"args\":{";
  bool first = true;
  for (const auto& [k, v] : args) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  out += "}";
}

}  // namespace

// ----------------------------------------------------------- TraceEvent

const std::string* TraceEvent::arg(std::string_view key) const {
  for (const auto& [k, v] : args) {
    if (k == key) return &v;
  }
  return nullptr;
}

// ---------------------------------------------------------------- Trace

std::vector<const TraceEvent*> Trace::named(std::string_view name) const {
  std::vector<const TraceEvent*> out;
  for (const auto& e : events) {
    if (e.name == name) out.push_back(&e);
  }
  return out;
}

std::size_t Trace::count_named(std::string_view name) const {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.name == name) ++n;
  }
  return n;
}

const TraceEvent* Trace::find_span(std::string_view name) const {
  for (const auto& e : events) {
    if (e.phase == TraceEvent::Phase::span && e.name == name) return &e;
  }
  return nullptr;
}

std::string Trace::to_chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const auto& e : events) {
    comma();
    out += "{\"name\":\"" + json_escape(e.name) + "\"";
    if (!e.category.empty()) {
      out += ",\"cat\":\"" + json_escape(e.category) + "\"";
    }
    out += std::string(",\"ph\":\"") +
           (e.phase == TraceEvent::Phase::span ? "X" : "i") + "\"";
    out += ",\"ts\":" + json_number(e.ts_us);
    if (e.phase == TraceEvent::Phase::span) {
      out += ",\"dur\":" + json_number(e.dur_us);
      out += ",\"id\":" + std::to_string(e.id);
      if (e.parent != 0) out += ",\"parent\":" + std::to_string(e.parent);
      if (e.modeled) out += ",\"modeled\":1";
    }
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid) + ",";
    append_args_json(out, e.args);
    out += "}";
  }
  for (const auto& [name, value] : counters) {
    comma();
    out += "{\"name\":\"" + json_escape(name) +
           "\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,"
           "\"args\":{\"value\":" +
           std::to_string(value) + "}}";
  }
  for (const auto& [name, value] : gauges) {
    comma();
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    out += "{\"name\":\"" + json_escape(name) +
           "\",\"ph\":\"C\",\"gauge\":1,\"ts\":0,\"pid\":1,\"tid\":0,"
           "\"args\":{\"value\":" +
           buf + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  bool mfirst = true;
  for (const auto& [k, v] : metadata) {
    if (!mfirst) out += ",";
    mfirst = false;
    out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  out += "}}";
  return out;
}

Trace Trace::from_chrome_json(std::string_view json) {
  return from_chrome_json(yaml::parse(json));
}

Trace Trace::from_chrome_json(const yaml::Node& root) {
  Trace trace;
  if (root.has("traceEvents")) {
    for (const auto& ev : root.at("traceEvents").items()) {
      const std::string ph = ev.at("ph").as_string_or("X");
      const std::string name = ev.at("name").as_string();
      if (ph == "C") {
        double value = ev.at("args").at("value").as_double();
        if (ev.at("gauge").as_int_or(0) != 0) {
          trace.gauges[name] = value;
        } else {
          trace.counters[name] = static_cast<long long>(value);
        }
        continue;
      }
      TraceEvent e;
      e.phase = ph == "X" ? TraceEvent::Phase::span
                          : TraceEvent::Phase::instant;
      e.name = name;
      e.category = ev.at("cat").as_string_or("");
      e.ts_us = ev.at("ts").as_double();
      if (e.phase == TraceEvent::Phase::span) {
        e.dur_us = ev.at("dur").as_double();
        e.id = static_cast<std::uint64_t>(ev.at("id").as_int_or(0));
        e.parent = static_cast<std::uint64_t>(ev.at("parent").as_int_or(0));
        e.modeled = ev.at("modeled").as_int_or(0) != 0;
      }
      e.tid = static_cast<std::uint32_t>(ev.at("tid").as_int_or(0));
      if (ev.has("args")) {
        for (const auto& [k, v] : ev.at("args").map()) {
          e.args.emplace_back(k, v.as_string());
        }
      }
      trace.events.push_back(std::move(e));
    }
  }
  if (root.has("otherData")) {
    for (const auto& [k, v] : root.at("otherData").map()) {
      trace.metadata[k] = v.as_string();
    }
  }
  return trace;
}

// ------------------------------------------------------- TraceCollector

TraceCollector::TraceCollector() : epoch_ns_(now_ns()) {}

TraceCollector& TraceCollector::global() {
  // Leaked intentionally: worker threads (the process-wide ThreadPool)
  // may still close spans during static destruction.
  static TraceCollector* instance = [] {
    auto* collector = new TraceCollector();
    if (const char* env = std::getenv("BENCHPARK_TRACE")) {
      collector->configure(env);
    }
    return collector;
  }();
  return *instance;
}

void TraceCollector::configure(std::string_view spec) {
  auto text = support::to_lower(support::trim(spec));
  std::lock_guard<std::mutex> lock(mu_);
  categories_.clear();
  if (text.empty() || text == "0" || text == "off" || text == "false") {
    enabled_.store(false, std::memory_order_relaxed);
    return;
  }
  if (text == "1" || text == "on" || text == "true" || text == "all") {
    enabled_.store(true, std::memory_order_relaxed);
    return;
  }
  for (auto& part : support::split(text, ',')) {
    auto category = support::trim(part);
    if (category.empty()) continue;
    if (category == "all") {
      categories_.clear();
      break;
    }
    categories_.emplace_back(category);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::set_enabled(bool on) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    categories_.clear();
  }
  enabled_.store(on, std::memory_order_relaxed);
}

bool TraceCollector::category_enabled(std::string_view category) const {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (categories_.empty()) return true;
  for (const auto& c : categories_) {
    if (c == category) return true;
  }
  return false;
}

std::uint64_t TraceCollector::begin_span(std::string_view name,
                                         std::string_view category) {
  if (!enabled()) return 0;
  if (!category_enabled(category)) return 0;
  OpenSpan open;
  open.collector = this;
  open.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  open.parent = innermost_for(this);
  open.name = std::string(name);
  open.category = std::string(category);
  open.start_ns = now_ns();
  t_stack.push_back(std::move(open));
  return t_stack.back().id;
}

void TraceCollector::end_span(std::uint64_t id) {
  if (id == 0) return;
  if (t_stack.empty() || t_stack.back().collector != this ||
      t_stack.back().id != id) {
    throw Error("trace: unbalanced end_span(" + std::to_string(id) +
                "); innermost open span is " +
                (t_stack.empty() ? "<none>"
                                 : "'" + t_stack.back().name + "' (" +
                                       std::to_string(t_stack.back().id) +
                                       ")"));
  }
  const std::int64_t end_ns = now_ns();
  OpenSpan open = std::move(t_stack.back());
  t_stack.pop_back();

  TraceEvent e;
  e.phase = TraceEvent::Phase::span;
  e.name = std::move(open.name);
  e.category = std::move(open.category);
  e.id = open.id;
  e.parent = open.parent;
  e.tid = thread_index();
  e.args = std::move(open.args);
  std::lock_guard<std::mutex> lock(mu_);
  e.ts_us = static_cast<double>(open.start_ns - epoch_ns_) / 1000.0;
  e.dur_us = static_cast<double>(end_ns - open.start_ns) / 1000.0;
  events_.push_back(std::move(e));
}

void TraceCollector::annotate(std::string_view key, std::string_view value) {
  for (auto it = t_stack.rbegin(); it != t_stack.rend(); ++it) {
    if (it->collector == this) {
      it->args.emplace_back(std::string(key), std::string(value));
      return;
    }
  }
}

void TraceCollector::emit_span(std::string_view name,
                               std::string_view category,
                               double modeled_seconds, SpanArgs args) {
  if (!enabled()) return;
  if (!category_enabled(category)) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::span;
  e.name = std::string(name);
  e.category = std::string(category);
  e.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  e.parent = innermost_for(this);
  e.tid = thread_index();
  e.modeled = true;
  e.dur_us = modeled_seconds * 1e6;
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  e.ts_us = static_cast<double>(now_ns() - epoch_ns_) / 1000.0;
  events_.push_back(std::move(e));
}

void TraceCollector::instant(std::string_view name,
                             std::string_view category, SpanArgs args) {
  if (!enabled()) return;
  if (!category_enabled(category)) return;
  TraceEvent e;
  e.phase = TraceEvent::Phase::instant;
  e.name = std::string(name);
  e.category = std::string(category);
  e.parent = innermost_for(this);
  e.tid = thread_index();
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  e.ts_us = static_cast<double>(now_ns() - epoch_ns_) / 1000.0;
  events_.push_back(std::move(e));
}

void TraceCollector::counter_add(std::string_view name, long long delta) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void TraceCollector::gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void TraceCollector::attach_metadata(std::string_view key,
                                     std::string_view value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  metadata_[std::string(key)] = std::string(value);
}

std::uint64_t TraceCollector::current_span() const {
  return innermost_for(this);
}

Trace TraceCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Trace trace;
  trace.events = events_;
  trace.counters.insert(counters_.begin(), counters_.end());
  trace.gauges.insert(gauges_.begin(), gauges_.end());
  trace.metadata.insert(metadata_.begin(), metadata_.end());
  return trace;
}

std::size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceCollector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  counters_.clear();
  gauges_.clear();
  metadata_.clear();
  epoch_ns_ = now_ns();
}

// --------------------------------------------------------- ScopedParent

ScopedParent::ScopedParent(TraceCollector& collector,
                           std::uint64_t parent_id) {
  if (parent_id == 0) return;
  t_ambient.emplace_back(&collector, parent_id);
  active_ = true;
}

ScopedParent::~ScopedParent() {
  if (active_) t_ambient.pop_back();
}

}  // namespace benchpark::obs
