#include "src/obs/trace_diff.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/support/string_util.hpp"

namespace benchpark::obs {

namespace {

/// Path of one span: names joined "/" along the parent chain (memoized).
const std::string& path_of(
    const TraceEvent& event,
    const std::unordered_map<std::uint64_t, const TraceEvent*>& by_id,
    std::unordered_map<std::uint64_t, std::string>& memo) {
  auto it = memo.find(event.id);
  if (it != memo.end()) return it->second;
  std::string path = event.name;
  if (event.parent != 0) {
    auto parent = by_id.find(event.parent);
    if (parent != by_id.end() && parent->second->id != event.id) {
      path = path_of(*parent->second, by_id, memo) + "/" + event.name;
    }
  }
  return memo.emplace(event.id, std::move(path)).first->second;
}

}  // namespace

std::map<std::string, SpanStats> aggregate_spans(const Trace& trace) {
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  for (const auto& e : trace.events) {
    if (e.phase == TraceEvent::Phase::span && e.id != 0) {
      by_id.emplace(e.id, &e);
    }
  }
  std::unordered_map<std::uint64_t, std::string> memo;
  // Real (wall-clock) time of direct children, to derive self time.
  std::unordered_map<std::uint64_t, double> child_real_us;
  for (const auto& e : trace.events) {
    if (e.phase != TraceEvent::Phase::span || e.modeled || e.parent == 0) {
      continue;
    }
    child_real_us[e.parent] += e.dur_us;
  }

  std::map<std::string, SpanStats> stats;
  for (const auto& e : trace.events) {
    if (e.phase != TraceEvent::Phase::span) continue;
    const std::string& path = path_of(e, by_id, memo);
    auto& s = stats[path];
    s.path = path;
    ++s.count;
    if (e.modeled) {
      s.modeled_us += e.dur_us;
    } else {
      s.total_us += e.dur_us;
      auto children = child_real_us.find(e.id);
      double self = e.dur_us -
                    (children == child_real_us.end() ? 0.0 : children->second);
      s.self_us += std::max(0.0, self);
    }
  }
  return stats;
}

TraceDiff::TraceDiff(const Trace& base, const Trace& other) {
  auto a = aggregate_spans(base);
  auto b = aggregate_spans(other);
  std::map<std::string, PathDelta> merged;
  for (const auto& [path, s] : a) {
    auto& d = merged[path];
    d.path = path;
    d.count_a = s.count;
    d.total_us_a = s.total_us;
    d.modeled_us_a = s.modeled_us;
  }
  for (const auto& [path, s] : b) {
    auto& d = merged[path];
    d.path = path;
    d.count_b = s.count;
    d.total_us_b = s.total_us;
    d.modeled_us_b = s.modeled_us;
  }
  rows_.reserve(merged.size());
  for (auto& [path, d] : merged) rows_.push_back(std::move(d));

  for (const auto& [name, value] : base.counters) {
    counter_deltas_[name] -= value;
  }
  for (const auto& [name, value] : other.counters) {
    counter_deltas_[name] += value;
  }
}

const PathDelta* TraceDiff::find(std::string_view path) const {
  for (const auto& d : rows_) {
    if (d.path == path) return &d;
  }
  return nullptr;
}

std::vector<PathDelta> TraceDiff::regressions(double min_delta_us) const {
  std::vector<PathDelta> out;
  for (const auto& d : rows_) {
    if (d.delta_us() + d.modeled_delta_us() >= min_delta_us) {
      out.push_back(d);
    }
  }
  std::sort(out.begin(), out.end(), [](const PathDelta& x,
                                       const PathDelta& y) {
    return x.delta_us() + x.modeled_delta_us() >
           y.delta_us() + y.modeled_delta_us();
  });
  return out;
}

support::Table TraceDiff::to_table() const {
  support::Table table({"path", "count a", "count b", "time a (us)",
                        "time b (us)", "modeled a (us)", "modeled b (us)"});
  for (const auto& d : rows_) {
    table.add_row({d.path, std::to_string(d.count_a),
                   std::to_string(d.count_b),
                   support::format_double(d.total_us_a, 6),
                   support::format_double(d.total_us_b, 6),
                   support::format_double(d.modeled_us_a, 6),
                   support::format_double(d.modeled_us_b, 6)});
  }
  return table;
}

}  // namespace benchpark::obs
