// Thicket-like composition of performance profiles (Section 5; Brink et
// al., HPDC'23: "Thicket composes performance data from multiple
// performance profiles potentially generated at different scales, on
// different architectures, ... and by different tools").
//
// A Thicket is a 2-D frame: rows are region paths (the union across all
// ingested profiles), columns are profiles (each carrying its metadata).
// Statistics run row-wise across profiles, and metadata predicates select
// profile subsets (filter-by-architecture, by-scale, ...).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/perf/caliper.hpp"
#include "src/support/table.hpp"

namespace benchpark::analysis {

struct RowStats {
  std::string path;
  std::size_t present_in = 0;  // how many profiles have this region
  double mean = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;
};

class Thicket {
public:
  /// Ingest one profile under a unique column name.
  void add_profile(std::string column, perf::Profile profile);

  [[nodiscard]] std::size_t num_profiles() const { return columns_.size(); }
  [[nodiscard]] std::vector<std::string> column_names() const;
  /// Union of region paths across profiles, sorted.
  [[nodiscard]] std::vector<std::string> paths() const;

  /// Inclusive time for (path, column); nullopt when absent.
  [[nodiscard]] std::optional<double> value(std::string_view path,
                                            std::string_view column) const;

  /// Row-wise statistics across all profiles.
  [[nodiscard]] std::vector<RowStats> stats() const;
  [[nodiscard]] std::optional<RowStats> stats_for(
      std::string_view path) const;

  /// New thicket with only profiles whose metadata satisfies `pred`.
  [[nodiscard]] Thicket filter(
      const std::function<bool(const std::map<std::string, std::string>&)>&
          pred) const;

  /// Render the time matrix (rows: paths; cols: profiles).
  [[nodiscard]] support::Table to_table() const;

private:
  struct Column {
    std::string name;
    perf::Profile profile;
  };
  std::vector<Column> columns_;
};

}  // namespace benchpark::analysis
