// Bridge from the obs trace layer into the analysis stack: a collected
// trace becomes a perf::Profile (so Thicket can compose chaos vs. clean
// runs column-wise) and its counters/gauges become MetricsDb rows (so
// dashboards chart cache hit rates and retry counts over time) — the
// Caliper -> Adiak -> Thicket pipeline of Section 5, driven end to end
// from one trace snapshot.
#pragma once

#include <string>

#include "src/analysis/metrics_db.hpp"
#include "src/obs/trace.hpp"
#include "src/perf/caliper.hpp"

namespace benchpark::analysis {

namespace detail {

/// Fold a trace's span tree into a flat profile: one region per span
/// path (names joined "/" along the parent chain), inclusive seconds =
/// wall-clock plus modeled time, count = span visits. Trace metadata
/// carries over as profile (Adiak) metadata.
[[nodiscard]] perf::Profile trace_to_profile(const obs::Trace& trace);

/// Insert the trace's counters and gauges as MetricsDb rows under
/// (benchmark, system, experiment); counter names become FOM names
/// ("buildcache.hits", ...). Returns the number of rows inserted.
std::size_t trace_to_metrics(const obs::Trace& trace, MetricsDb& db,
                             const std::string& benchmark,
                             const std::string& system,
                             const std::string& experiment);

}  // namespace detail

// Legacy entry points, superseded by run_analysis(AnalysisRequest) with a
// `trace` source (src/analysis/analysis.hpp).

[[deprecated("use analysis::run_analysis(AnalysisRequest)")]]
[[nodiscard]] inline perf::Profile trace_to_profile(const obs::Trace& trace) {
  return detail::trace_to_profile(trace);
}

[[deprecated("use analysis::run_analysis(AnalysisRequest)")]]
inline std::size_t trace_to_metrics(const obs::Trace& trace, MetricsDb& db,
                                    const std::string& benchmark,
                                    const std::string& system,
                                    const std::string& experiment) {
  return detail::trace_to_metrics(trace, db, benchmark, system, experiment);
}

}  // namespace benchpark::analysis
