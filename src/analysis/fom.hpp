// Figures of merit and success criteria (Section 4.5).
//
// Ramble's application.py declares FOMs as regexes with named groups
// (Figure 8) and success criteria as string matches. `ramble workspace
// analyze` applies them to each experiment's output; this module is that
// extraction engine.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace benchpark::analysis {

/// figure_of_merit("FOM_Solve", fom_regex=..., group_name=..., units=...)
struct FomSpec {
  std::string name;
  std::string regex;       // ECMAScript; the capture group holds the value
  std::string group_name;  // informational (C++ regex uses group index 1)
  std::string units;
};

/// success_criteria('pass', mode='string', match=...)
struct SuccessCriterion {
  std::string name;
  std::string match;  // regex that must match somewhere in the output
};

/// One extracted figure of merit.
struct FomValue {
  std::string name;
  std::string raw;      // matched text
  double value = 0;     // numeric value when parseable, else 0
  bool numeric = false;
  std::string units;
};

/// Apply one FOM spec; returns nullopt when the regex does not match.
/// Throws benchpark::Error for an invalid regex.
std::optional<FomValue> extract_fom(const FomSpec& spec,
                                    const std::string& output);

/// Apply many specs; missing FOMs are skipped.
std::vector<FomValue> extract_foms(const std::vector<FomSpec>& specs,
                                   const std::string& output);

/// All criteria must match for the experiment to count as successful.
bool evaluate_success(const std::vector<SuccessCriterion>& criteria,
                      const std::string& output);

/// One experiment's extraction work, by reference (the caller owns the
/// spec/criteria/output storage for the batch's lifetime). A null
/// `output` marks an experiment that never ran: its result stays empty
/// with extracted == false.
struct FomExtractTask {
  const std::vector<FomSpec>* specs = nullptr;
  const std::vector<SuccessCriterion>* criteria = nullptr;
  const std::string* output = nullptr;
};

struct FomExtractResult {
  std::vector<FomValue> foms;
  bool success = false;
  bool extracted = false;  // false when the task had no output
};

/// Run extract_foms + evaluate_success over many experiments on the
/// shared ThreadPool (threads: 0 = pool default, 1 = serial). Results
/// are index-aligned with `tasks` and identical at every width —
/// extraction is a pure function of (specs, criteria, output).
std::vector<FomExtractResult> extract_foms_batch(
    const std::vector<FomExtractTask>& tasks, int threads = 0);

}  // namespace benchpark::analysis
