// Figures of merit and success criteria (Section 4.5).
//
// Ramble's application.py declares FOMs as regexes with named groups
// (Figure 8) and success criteria as string matches. `ramble workspace
// analyze` applies them to each experiment's output; this module is that
// extraction engine.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace benchpark::analysis {

/// figure_of_merit("FOM_Solve", fom_regex=..., group_name=..., units=...)
struct FomSpec {
  std::string name;
  std::string regex;       // ECMAScript; the capture group holds the value
  std::string group_name;  // informational (C++ regex uses group index 1)
  std::string units;
};

/// success_criteria('pass', mode='string', match=...)
struct SuccessCriterion {
  std::string name;
  std::string match;  // regex that must match somewhere in the output
};

/// One extracted figure of merit.
struct FomValue {
  std::string name;
  std::string raw;      // matched text
  double value = 0;     // numeric value when parseable, else 0
  bool numeric = false;
  std::string units;
};

/// Apply one FOM spec; returns nullopt when the regex does not match.
/// Throws benchpark::Error for an invalid regex.
std::optional<FomValue> extract_fom(const FomSpec& spec,
                                    const std::string& output);

/// Apply many specs; missing FOMs are skipped.
std::vector<FomValue> extract_foms(const std::vector<FomSpec>& specs,
                                   const std::string& output);

/// All criteria must match for the experiment to count as successful.
bool evaluate_success(const std::vector<SuccessCriterion>& criteria,
                      const std::string& output);

}  // namespace benchpark::analysis
