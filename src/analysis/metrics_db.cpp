#include "src/analysis/metrics_db.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/string_util.hpp"

namespace benchpark::analysis {

std::uint64_t MetricsDb::insert(ResultRow row) {
  row.sequence = next_sequence_++;
  rows_.push_back(std::move(row));
  return rows_.back().sequence;
}

namespace {

bool matches(const ResultRow& row, const Query& q) {
  if (!q.benchmark.empty() && row.benchmark != q.benchmark) return false;
  if (!q.system.empty() && row.system != q.system) return false;
  if (!q.fom_name.empty() && row.fom_name != q.fom_name) return false;
  if (q.success && row.success != *q.success) return false;
  return true;
}

}  // namespace

std::vector<const ResultRow*> MetricsDb::query(const Query& q) const {
  std::vector<const ResultRow*> out;
  for (const auto& row : rows_) {
    if (matches(row, q)) out.push_back(&row);
  }
  return out;
}

Aggregate MetricsDb::aggregate(const Query& q) const {
  Aggregate agg;
  double sum = 0, sum2 = 0;
  for (const auto* row : query(q)) {
    if (agg.count == 0) {
      agg.min = agg.max = row->value;
    } else {
      agg.min = std::min(agg.min, row->value);
      agg.max = std::max(agg.max, row->value);
    }
    sum += row->value;
    sum2 += row->value * row->value;
    ++agg.count;
  }
  if (agg.count > 0) {
    auto n = static_cast<double>(agg.count);
    agg.mean = sum / n;
    double variance = std::max(0.0, sum2 / n - agg.mean * agg.mean);
    agg.stddev = std::sqrt(variance);
  }
  return agg;
}

namespace {

std::vector<std::string> distinct(
    const std::vector<ResultRow>& rows,
    const std::string ResultRow::* field) {
  std::vector<std::string> out;
  for (const auto& row : rows) {
    if (std::find(out.begin(), out.end(), row.*field) == out.end()) {
      out.push_back(row.*field);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::string> MetricsDb::distinct_systems() const {
  return distinct(rows_, &ResultRow::system);
}

std::vector<std::string> MetricsDb::distinct_benchmarks() const {
  return distinct(rows_, &ResultRow::benchmark);
}

std::vector<std::string> MetricsDb::distinct_fom_names() const {
  return distinct(rows_, &ResultRow::fom_name);
}

std::vector<std::pair<std::uint64_t, double>> MetricsDb::series(
    const Query& q) const {
  std::vector<std::pair<std::uint64_t, double>> out;
  for (const auto* row : query(q)) {
    out.emplace_back(row->sequence, row->value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

support::Table MetricsDb::to_table(const Query& q) const {
  support::Table table(
      {"#", "benchmark", "system", "experiment", "fom", "value", "units",
       "ok"});
  for (const auto* row : query(q)) {
    table.add_row({std::to_string(row->sequence), row->benchmark, row->system,
                   row->experiment, row->fom_name,
                   support::format_double(row->value, 6), row->units,
                   row->success ? "yes" : "NO"});
  }
  return table;
}

}  // namespace benchpark::analysis
