#include "src/analysis/detect.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"

namespace benchpark::analysis {

namespace {

constexpr double kAbsFloor = 1e-12;
/// MAD -> sigma for a normal distribution.
constexpr double kMadScale = 1.4826;

double median_of(std::vector<double> values) {
  // values is a working copy; nth_element is allowed to scramble it.
  const std::size_t n = values.size();
  auto mid = values.begin() + static_cast<std::ptrdiff_t>(n / 2);
  std::nth_element(values.begin(), mid, values.end());
  double upper = *mid;
  if (n % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), mid);
  return 0.5 * (lower + upper);
}

}  // namespace

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::ok: return "ok";
    case Verdict::regression: return "regression";
    case Verdict::improvement: return "improvement";
    case Verdict::noisy: return "noisy";
  }
  return "?";
}

Classification classify_against(const std::vector<double>& baseline,
                                double value,
                                const DetectorConfig& config) {
  const std::size_t need = std::max<std::size_t>(config.warmup, 1);
  if (baseline.size() < need) {
    throw InsufficientHistoryError(
        "series has " + std::to_string(baseline.size()) +
            " baseline sample(s); detector needs " + std::to_string(need),
        baseline.size(), need);
  }

  Classification c;
  c.value = value;
  c.baseline_samples = baseline.size();
  c.baseline_median = median_of(baseline);

  std::vector<double> deviations;
  deviations.reserve(baseline.size());
  for (double v : baseline) {
    deviations.push_back(std::fabs(v - c.baseline_median));
  }
  double mad_sigma = kMadScale * median_of(std::move(deviations));
  // Flat (or near-flat) baselines still need a scale: fall back to a
  // relative epsilon of the center so exact repeats never alarm but any
  // real move scores far beyond threshold.
  c.noise_sigma = std::max(
      {mad_sigma, std::fabs(c.baseline_median) * 1e-9, kAbsFloor});

  const double center_scale = std::max(std::fabs(c.baseline_median),
                                       kAbsFloor);
  const double deviation = value - c.baseline_median;
  c.score = std::fabs(deviation) / c.noise_sigma;

  if (c.noise_sigma / center_scale > config.max_noise_ratio) {
    // The series itself is too unstable to call either way.
    c.verdict = Verdict::noisy;
    c.confidence = 0;
    return c;
  }
  const double relative = std::fabs(deviation) / center_scale;
  if (c.score >= config.threshold &&
      relative >= config.min_relative_change) {
    const bool worse = config.higher_is_worse ? deviation > 0
                                              : deviation < 0;
    c.verdict = worse ? Verdict::regression : Verdict::improvement;
    c.confidence = std::min(1.0, 0.5 * c.score / config.threshold);
  } else {
    c.verdict = Verdict::ok;
    c.confidence = 1.0 - std::min(1.0, 0.5 * c.score / config.threshold);
  }
  return c;
}

namespace {

/// Shared regime-aware walk. Classifies each classifiable sample in
/// order; calls `emit(i, classification)` for every classified index and
/// resets the regime on confirmed change points.
template <typename Emit>
void walk(const std::vector<HistorySample>& samples,
          const DetectorConfig& config, const Emit& emit) {
  const std::size_t need = std::max<std::size_t>(config.warmup, 1);
  const std::size_t window = std::max<std::size_t>(config.window, need);
  std::vector<double> baseline;  // successful values of current regime
  std::vector<std::size_t> baseline_idx;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const HistorySample& s = samples[i];
    if (!s.success) continue;  // failures carry no value to judge
    if (baseline.size() >= need) {
      std::vector<double> recent;
      const std::size_t take = std::min(window, baseline.size());
      recent.assign(baseline.end() - static_cast<std::ptrdiff_t>(take),
                    baseline.end());
      Classification c = classify_against(recent, s.value, config);
      const bool change = c.verdict == Verdict::regression ||
                          c.verdict == Verdict::improvement;
      emit(i, baseline_idx.empty() ? i : baseline_idx.back(), c);
      if (change) {
        // The step is the new normal; judge what follows against it.
        baseline.clear();
        baseline_idx.clear();
      }
    }
    baseline.push_back(s.value);
    baseline_idx.push_back(i);
  }
}

}  // namespace

Classification classify_latest(const std::vector<HistorySample>& samples,
                               const DetectorConfig& config) {
  std::size_t last = samples.size();
  while (last > 0 && !samples[last - 1].success) --last;
  if (last == 0) {
    throw InsufficientHistoryError(
        "series has no successful samples", 0,
        std::max<std::size_t>(config.warmup, 1));
  }
  const std::size_t target = last - 1;
  bool found = false;
  Classification result;
  walk(samples, config,
       [&](std::size_t i, std::size_t, const Classification& c) {
         if (i == target) {
           result = c;
           found = true;
         }
       });
  if (!found) {
    std::size_t have = 0;
    for (std::size_t i = 0; i < target; ++i) {
      if (samples[i].success) ++have;
    }
    // Under-counts regime resets only when a change point precedes the
    // latest sample inside the warmup span — the message still names the
    // configured minimum, which is what the caller can act on.
    throw InsufficientHistoryError(
        "series has " + std::to_string(have) +
            " baseline sample(s) in the current regime; detector needs " +
            std::to_string(std::max<std::size_t>(config.warmup, 1)),
        have, std::max<std::size_t>(config.warmup, 1));
  }
  return result;
}

std::vector<ChangePoint> scan(const std::vector<HistorySample>& samples,
                              const DetectorConfig& config) {
  std::vector<ChangePoint> points;
  walk(samples, config,
       [&](std::size_t i, std::size_t last_baseline,
           const Classification& c) {
         if (c.verdict != Verdict::regression &&
             c.verdict != Verdict::improvement) {
           return;
         }
         ChangePoint p;
         p.index = i;
         p.sequence = samples[i].sequence;
         p.classification = c;
         p.config_hash = samples[i].config_hash;
         p.baseline_config_hash = samples[last_baseline].config_hash;
         points.push_back(std::move(p));
       });
  return points;
}

}  // namespace benchpark::analysis
