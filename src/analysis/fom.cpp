#include "src/analysis/fom.hpp"

#include <regex>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::analysis {

namespace {

std::regex compile(const std::string& pattern, const std::string& what) {
  try {
    return std::regex(pattern, std::regex::ECMAScript);
  } catch (const std::regex_error& e) {
    throw Error("invalid " + what + " regex '" + pattern + "': " + e.what());
  }
}

}  // namespace

std::optional<FomValue> extract_fom(const FomSpec& spec,
                                    const std::string& output) {
  auto re = compile(spec.regex, "figure-of-merit");
  std::smatch match;
  if (!std::regex_search(output, match, re)) return std::nullopt;
  FomValue value;
  value.name = spec.name;
  value.units = spec.units;
  // Group 1 when present, else the whole match (string-valued FOMs like
  // "Kernel done" in Figure 8).
  value.raw = match.size() > 1 && match[1].matched ? match[1].str()
                                                   : match[0].str();
  if (support::looks_like_double(value.raw)) {
    value.value = support::parse_double(value.raw);
    value.numeric = true;
  }
  return value;
}

std::vector<FomValue> extract_foms(const std::vector<FomSpec>& specs,
                                   const std::string& output) {
  std::vector<FomValue> values;
  for (const auto& spec : specs) {
    if (auto v = extract_fom(spec, output)) values.push_back(std::move(*v));
  }
  return values;
}

bool evaluate_success(const std::vector<SuccessCriterion>& criteria,
                      const std::string& output) {
  for (const auto& c : criteria) {
    auto re = compile(c.match, "success-criterion");
    if (!std::regex_search(output, re)) return false;
  }
  return true;
}

}  // namespace benchpark::analysis
