#include "src/analysis/fom.hpp"

#include <locale>
#include <regex>

#include "src/support/error.hpp"
#include "src/support/parallel.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::analysis {

namespace {

// libstdc++'s classic-locale ctype fills its narrow/widen caches lazily
// per character, and std::regex construction/search exercises them.
// Fill both tables during static init (single-threaded) so regexes
// compiled on pool workers — run_all success criteria, batch FOM
// extraction — only ever read the caches.
const bool ctype_caches_warmed = [] {
  const auto& ct = std::use_facet<std::ctype<char>>(std::locale::classic());
  for (int c = 0; c < 256; ++c) {
    (void)ct.narrow(static_cast<char>(c), 0);
    (void)ct.widen(static_cast<char>(c));
  }
  return true;
}();

std::regex compile(const std::string& pattern, const std::string& what) {
  try {
    return std::regex(pattern, std::regex::ECMAScript);
  } catch (const std::regex_error& e) {
    throw Error("invalid " + what + " regex '" + pattern + "': " + e.what());
  }
}

}  // namespace

std::optional<FomValue> extract_fom(const FomSpec& spec,
                                    const std::string& output) {
  auto re = compile(spec.regex, "figure-of-merit");
  std::smatch match;
  if (!std::regex_search(output, match, re)) return std::nullopt;
  FomValue value;
  value.name = spec.name;
  value.units = spec.units;
  // Group 1 when present, else the whole match (string-valued FOMs like
  // "Kernel done" in Figure 8).
  value.raw = match.size() > 1 && match[1].matched ? match[1].str()
                                                   : match[0].str();
  if (support::looks_like_double(value.raw)) {
    value.value = support::parse_double(value.raw);
    value.numeric = true;
  }
  return value;
}

std::vector<FomValue> extract_foms(const std::vector<FomSpec>& specs,
                                   const std::string& output) {
  std::vector<FomValue> values;
  for (const auto& spec : specs) {
    if (auto v = extract_fom(spec, output)) values.push_back(std::move(*v));
  }
  return values;
}

bool evaluate_success(const std::vector<SuccessCriterion>& criteria,
                      const std::string& output) {
  for (const auto& c : criteria) {
    auto re = compile(c.match, "success-criterion");
    if (!std::regex_search(output, re)) return false;
  }
  return true;
}

std::vector<FomExtractResult> extract_foms_batch(
    const std::vector<FomExtractTask>& tasks, int threads) {
  std::vector<FomExtractResult> results(tasks.size());
  auto extract_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const auto& task = tasks[i];
      if (!task.output) continue;
      FomExtractResult& r = results[i];
      r.extracted = true;
      if (task.specs) r.foms = extract_foms(*task.specs, *task.output);
      if (task.criteria) {
        r.success = evaluate_success(*task.criteria, *task.output);
      }
    }
  };
  int width = threads == 0 ? support::ThreadPool::default_threads() : threads;
  if (width <= 1 || tasks.size() < 2) {
    extract_range(0, tasks.size());
  } else {
    support::parallel_for(tasks.size(), width, extract_range);
  }
  return results;
}

}  // namespace benchpark::analysis
