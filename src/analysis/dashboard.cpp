#include "src/analysis/dashboard.hpp"

// This file implements the deprecated Dashboard wrapper itself.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::analysis {

using support::format_double;

std::string sparkline(const std::vector<double>& values) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  std::string out;
  for (double v : values) {
    int bucket = 0;
    if (hi > lo) {
      bucket = static_cast<int>((v - lo) / (hi - lo) * 7.999);
      bucket = std::clamp(bucket, 0, 7);
    }
    out += kBlocks[bucket];
  }
  return out;
}

std::string Regression::describe() const {
  return benchmark + " on " + system + ": " + fom_name + " moved to " +
         format_double(latest, 5) + " (baseline " +
         format_double(baseline_mean, 5) + " ± " +
         format_double(baseline_stddev, 3) + ", " +
         format_double(sigmas, 3) + " sigma)";
}

Dashboard::Dashboard(const MetricsDb* db) : db_(db) {
  if (!db_) throw Error("dashboard needs a metrics database");
}

support::Table Dashboard::grid(const std::string& fom_name) const {
  auto systems = db_->distinct_systems();
  std::vector<std::string> header{"benchmark"};
  for (const auto& s : systems) header.push_back(s);
  support::Table table(header);

  for (const auto& benchmark : db_->distinct_benchmarks()) {
    std::vector<std::string> row{benchmark};
    for (const auto& system : systems) {
      auto series = db_->series({.benchmark = benchmark,
                                 .system = system,
                                 .fom_name = fom_name,
                                 .success = true});
      if (series.empty()) {
        row.push_back("-");
        continue;
      }
      std::vector<double> values;
      values.reserve(series.size());
      for (const auto& [seq, value] : series) values.push_back(value);
      row.push_back(format_double(values.back(), 5) + " " +
                    sparkline(values));
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::vector<Regression> Dashboard::detect_regressions(
    const std::string& fom_name, double threshold_sigmas,
    bool higher_is_worse) const {
  std::vector<Regression> regressions;
  for (const auto& benchmark : db_->distinct_benchmarks()) {
    for (const auto& system : db_->distinct_systems()) {
      auto series = db_->series({.benchmark = benchmark,
                                 .system = system,
                                 .fom_name = fom_name,
                                 .success = true});
      if (series.size() < 4) continue;
      double latest = series.back().second;
      double sum = 0, sum2 = 0;
      auto n = static_cast<double>(series.size() - 1);
      for (std::size_t i = 0; i + 1 < series.size(); ++i) {
        sum += series[i].second;
        sum2 += series[i].second * series[i].second;
      }
      double mean = sum / n;
      double stddev = std::sqrt(std::max(0.0, sum2 / n - mean * mean));
      if (stddev <= 0) {
        // Flat baseline: any move at all is notable; use a tiny epsilon
        // scale so exact repeats never alert.
        stddev = std::max(1e-12, std::fabs(mean) * 1e-9);
      }
      double deviation = latest - mean;
      if (!higher_is_worse) deviation = -deviation;
      if (deviation / stddev >= threshold_sigmas) {
        regressions.push_back({benchmark, system, fom_name, latest, mean,
                               stddev, deviation / stddev});
      }
    }
  }
  std::sort(regressions.begin(), regressions.end(),
            [](const Regression& a, const Regression& b) {
              return a.sigmas > b.sigmas;
            });
  return regressions;
}

std::string Dashboard::render(const std::string& fom_name) const {
  std::string out = "== Benchpark dashboard: " + fom_name + " ==\n";
  out += grid(fom_name).render();
  auto regressions = detect_regressions(fom_name);
  if (regressions.empty()) {
    out += "no regressions detected\n";
  } else {
    out += "REGRESSIONS:\n";
    for (const auto& r : regressions) {
      out += "  ! " + r.describe() + "\n";
    }
  }
  return out;
}

}  // namespace benchpark::analysis
