#include "src/analysis/report.hpp"

#include <cmath>
#include <cstdio>
#include <string_view>

#include "src/analysis/analysis.hpp"
#include "src/analysis/dashboard.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::analysis {

namespace {

using support::format_double;

/// Full-precision double for JSON: round-trips exactly, so identical
/// analyses render byte-identical reports.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_str(std::string_view s) {
  std::string out = "\"";
  json_escape_into(out, s);
  out += '"';
  return out;
}

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::vector<double> successful_values(const SeriesReport& s) {
  std::vector<double> values;
  values.reserve(s.samples.size());
  for (const auto& sample : s.samples) {
    if (sample.success) values.push_back(sample.value);
  }
  return values;
}

std::string classification_json(const Classification& c) {
  std::string out = "{";
  out += "\"verdict\":" + json_str(verdict_name(c.verdict));
  out += ",\"value\":" + json_num(c.value);
  out += ",\"baseline_median\":" + json_num(c.baseline_median);
  out += ",\"noise_sigma\":" + json_num(c.noise_sigma);
  out += ",\"score\":" + json_num(c.score);
  out += ",\"confidence\":" + json_num(c.confidence);
  out += ",\"baseline_samples\":" + std::to_string(c.baseline_samples);
  out += "}";
  return out;
}

std::string bisection_json(const BisectResult& b) {
  std::string out = "{";
  out += "\"first_bad\":" + json_str(b.first_bad_hash);
  out += ",\"last_good\":" + json_str(b.last_good_hash);
  out += ",\"good_value\":" + json_num(b.good_value);
  out += ",\"bad_value\":" + json_num(b.bad_value);
  out += ",\"cutoff\":" + json_num(b.cutoff);
  out += ",\"replays\":" + std::to_string(b.replays);
  out += ",\"steps\":[";
  for (std::size_t i = 0; i < b.steps.size(); ++i) {
    if (i) out += ',';
    out += "{\"config\":" + json_str(b.steps[i].config_hash);
    out += ",\"value\":" + json_num(b.steps[i].value);
    out += std::string(",\"bad\":") + (b.steps[i].bad ? "true" : "false");
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace

std::string render_json_report(const AnalysisResult& result) {
  std::string out = "{\"schema\":\"benchpark-analysis-v1\"";

  const AnalysisStats& st = result.stats;
  out += ",\"summary\":{";
  out += "\"series\":" + std::to_string(st.series_scanned);
  out += ",\"samples\":" + std::to_string(st.samples_scanned);
  out += ",\"change_points\":" + std::to_string(st.change_points);
  out += ",\"regressions\":" + std::to_string(st.regressions);
  out += ",\"improvements\":" + std::to_string(st.improvements);
  out += ",\"noisy_series\":" + std::to_string(st.noisy_series);
  out += ",\"regressed_series\":" + std::to_string(result.regressed_series());
  out += ",\"bisections\":" + std::to_string(st.bisections);
  out += ",\"bisect_replays\":" + std::to_string(st.bisect_replays);
  out += ",\"rows_ingested\":" + std::to_string(st.rows_ingested);
  out += ",\"thicket_columns\":" + std::to_string(st.thicket_columns);
  out += ",\"fits\":" + std::to_string(st.fits);
  out += "}";

  out += ",\"series\":[";
  for (std::size_t i = 0; i < result.series.size(); ++i) {
    const SeriesReport& s = result.series[i];
    if (i) out += ',';
    out += "{\"benchmark\":" + json_str(s.key.benchmark);
    out += ",\"system\":" + json_str(s.key.system);
    out += ",\"experiment\":" + json_str(s.key.experiment);
    out += ",\"fom\":" + json_str(s.key.fom);
    out += ",\"units\":" + json_str(s.units);
    out += ",\"samples\":[";
    for (std::size_t j = 0; j < s.samples.size(); ++j) {
      const HistorySample& h = s.samples[j];
      if (j) out += ',';
      out += "{\"seq\":" + std::to_string(h.sequence);
      out += ",\"value\":" + json_num(h.value);
      out += ",\"config\":" + json_str(h.config_hash);
      out += std::string(",\"success\":") + (h.success ? "true" : "false");
      out += "}";
    }
    out += "]";
    out += ",\"latest\":";
    out += s.has_latest ? classification_json(s.latest) : "null";
    out += ",\"latest_error\":";
    out += s.latest_error.empty() ? "null" : json_str(s.latest_error);
    out += ",\"change_points\":[";
    for (std::size_t j = 0; j < s.change_points.size(); ++j) {
      const ChangePoint& p = s.change_points[j];
      if (j) out += ',';
      out += "{\"index\":" + std::to_string(p.index);
      out += ",\"sequence\":" + std::to_string(p.sequence);
      out += ",\"classification\":" + classification_json(p.classification);
      out += ",\"config\":" + json_str(p.config_hash);
      out += ",\"baseline_config\":" + json_str(p.baseline_config_hash);
      out += "}";
    }
    out += "]";
    out += ",\"bisection\":";
    out += s.bisected ? bisection_json(s.bisection) : "null";
    out += ",\"bisect_error\":";
    out += s.bisect_error.empty() ? "null" : json_str(s.bisect_error);
    out += "}";
  }
  out += "]";

  out += ",\"fits\":[";
  for (std::size_t i = 0; i < result.fits.size(); ++i) {
    const ScalingFit& f = result.fits[i];
    if (i) out += ',';
    out += "{\"benchmark\":" + json_str(f.benchmark);
    out += ",\"system\":" + json_str(f.system);
    out += ",\"fom\":" + json_str(f.fom);
    out += std::string(",\"ok\":") + (f.ok ? "true" : "false");
    if (f.ok) {
      out += ",\"model\":" + json_str(f.model.str());
      out += ",\"complexity\":" + json_str(f.model.complexity());
      out += ",\"r_squared\":" + json_num(f.model.r_squared);
    } else {
      out += ",\"error\":" + json_str(f.error);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string render_text_report(const AnalysisResult& result) {
  std::string out;
  const AnalysisStats& st = result.stats;
  out += "analysis: " + std::to_string(st.series_scanned) + " series, " +
         std::to_string(st.samples_scanned) + " samples, " +
         std::to_string(st.change_points) + " change point(s) (" +
         std::to_string(st.regressions) + " regression(s), " +
         std::to_string(st.improvements) + " improvement(s)), " +
         std::to_string(result.regressed_series()) +
         " series currently regressed\n";
  for (const SeriesReport& s : result.series) {
    out += "\n" + s.key.str();
    if (!s.units.empty()) out += " [" + s.units + "]";
    out += "  n=" + std::to_string(s.samples.size());
    auto values = successful_values(s);
    if (!values.empty()) out += "  " + sparkline(values);
    out += "\n";
    if (s.has_latest) {
      out += "  latest: " + std::string(verdict_name(s.latest.verdict)) +
             " value=" + format_double(s.latest.value) +
             " baseline=" + format_double(s.latest.baseline_median) +
             " score=" + format_double(s.latest.score, 3) +
             " confidence=" + format_double(s.latest.confidence, 3) + "\n";
    } else if (!s.latest_error.empty()) {
      out += "  latest: (" + s.latest_error + ")\n";
    }
    for (const ChangePoint& p : s.change_points) {
      out += "  " + std::string(verdict_name(p.classification.verdict)) +
             " at seq " + std::to_string(p.sequence) + ": " +
             format_double(p.classification.baseline_median) + " -> " +
             format_double(p.classification.value) + " (" +
             format_double(p.classification.score, 2) + " sigma)";
      if (!p.config_hash.empty()) out += " config " + p.config_hash;
      out += "\n";
    }
    if (s.bisected) {
      out += "  bisected: first bad config " + s.bisection.first_bad_hash +
             " (last good " + s.bisection.last_good_hash + ", " +
             std::to_string(s.bisection.replays) + " replay(s))\n";
    } else if (!s.bisect_error.empty()) {
      out += "  bisection: " + s.bisect_error + "\n";
    }
  }
  if (!result.fits.empty()) {
    out += "\nscaling fits:\n";
    for (const ScalingFit& f : result.fits) {
      out += "  " + f.benchmark + "/" + f.system + ":" + f.fom + "  ";
      if (f.ok) {
        out += f.model.str() + "  " + f.model.complexity() +
               "  R2=" + format_double(f.model.r_squared, 4) + "\n";
      } else {
        out += "(" + f.error + ")\n";
      }
    }
  }
  return out;
}

std::string render_html_report(const AnalysisResult& result) {
  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  out += "<title>Benchpark analysis</title>\n<style>\n";
  out += "body{font-family:system-ui,sans-serif;margin:2em;color:#222}\n";
  out += "table{border-collapse:collapse;margin:0.6em 0}\n";
  out += "th,td{border:1px solid #ccc;padding:0.25em 0.6em;"
         "text-align:left;font-size:0.92em}\n";
  out += "th{background:#f0f0f0}\n";
  out += ".spark{font-family:monospace;font-size:1.1em}\n";
  out += ".ok{color:#1a7f37}.regression{color:#b91c1c;font-weight:bold}\n";
  out += ".improvement{color:#1d4ed8}.noisy{color:#92400e}\n";
  out += ".hash{font-family:monospace;font-size:0.85em}\n";
  out += "summary{cursor:pointer}\n";
  out += "</style></head><body>\n";
  out += "<h1>Benchpark analysis</h1>\n";

  const AnalysisStats& st = result.stats;
  out += "<p>" + std::to_string(st.series_scanned) + " series &middot; " +
         std::to_string(st.samples_scanned) + " samples &middot; " +
         std::to_string(st.change_points) + " change points (<span "
         "class=\"regression\">" + std::to_string(st.regressions) +
         " regressions</span>, <span class=\"improvement\">" +
         std::to_string(st.improvements) + " improvements</span>) &middot; " +
         std::to_string(result.regressed_series()) +
         " series currently regressed</p>\n";

  out += "<h2>Series</h2>\n<table>\n<tr><th>series</th><th>units</th>"
         "<th>n</th><th>trend</th><th>latest</th><th>score</th>"
         "<th>change points</th><th>attribution</th></tr>\n";
  for (const SeriesReport& s : result.series) {
    out += "<tr><td>" + html_escape(s.key.str()) + "</td>";
    out += "<td>" + html_escape(s.units) + "</td>";
    out += "<td>" + std::to_string(s.samples.size()) + "</td>";
    auto values = successful_values(s);
    out += "<td class=\"spark\">" + sparkline(values) + "</td>";
    if (s.has_latest) {
      std::string v(verdict_name(s.latest.verdict));
      out += "<td class=\"" + v + "\">" + v + " " +
             html_escape(format_double(s.latest.value)) + "</td>";
      out += "<td>" + html_escape(format_double(s.latest.score, 2)) +
             "&sigma;</td>";
    } else {
      out += "<td>" + html_escape(s.latest_error) + "</td><td></td>";
    }
    out += "<td>";
    for (std::size_t j = 0; j < s.change_points.size(); ++j) {
      const ChangePoint& p = s.change_points[j];
      std::string v(verdict_name(p.classification.verdict));
      if (j) out += "<br>";
      out += "<span class=\"" + v + "\">" + v + "@" +
             std::to_string(p.sequence) + "</span> " +
             html_escape(format_double(p.classification.baseline_median)) +
             " &rarr; " + html_escape(format_double(p.classification.value));
    }
    out += "</td><td>";
    if (s.bisected) {
      out += "first bad <span class=\"hash\">" +
             html_escape(s.bisection.first_bad_hash) + "</span> (" +
             std::to_string(s.bisection.replays) + " replays)";
    } else if (!s.bisect_error.empty()) {
      out += html_escape(s.bisect_error);
    }
    out += "</td></tr>\n";
  }
  out += "</table>\n";

  if (!result.fits.empty()) {
    out += "<h2>Extra-P scaling fits</h2>\n<table>\n<tr><th>workload</th>"
           "<th>model</th><th>complexity</th><th>adj. R&sup2;</th></tr>\n";
    for (const ScalingFit& f : result.fits) {
      out += "<tr><td>" + html_escape(f.benchmark + "/" + f.system + ":" +
                                      f.fom) + "</td>";
      if (f.ok) {
        out += "<td>" + html_escape(f.model.str()) + "</td><td>" +
               html_escape(f.model.complexity()) + "</td><td>" +
               html_escape(format_double(f.model.r_squared, 4)) + "</td>";
      } else {
        out += "<td colspan=\"3\">" + html_escape(f.error) + "</td>";
      }
      out += "</tr>\n";
    }
    out += "</table>\n";
  }
  out += "</body></html>\n";
  return out;
}

}  // namespace benchpark::analysis
