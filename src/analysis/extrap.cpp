#include "src/analysis/extrap.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::analysis {

using support::format_double;

double ScalingModel::evaluate(double p) const {
  double term = coefficient * std::pow(p, exponent);
  if (log_exponent != 0) {
    term *= std::pow(std::log2(std::max(p, 1.000001)), log_exponent);
  }
  return constant + term;
}

std::string ScalingModel::str() const {
  std::string out = format_double(constant, 16);
  out += " + " + format_double(coefficient, 16) + " * p^(" +
         format_double(exponent, 6) + ")";
  if (log_exponent != 0) {
    out += " * log2(p)^(" + std::to_string(log_exponent) + ")";
  }
  return out;
}

std::string ScalingModel::complexity() const {
  bool has_poly = exponent != 0.0 && coefficient != 0.0;
  bool has_log = log_exponent != 0 && coefficient != 0.0;
  if (!has_poly && !has_log) return "O(1)";
  std::string out = "O(";
  if (has_poly) out += "p^" + format_double(exponent, 4);
  if (has_log) {
    if (has_poly) out += " ";
    out += log_exponent == 1
               ? "log p"
               : "log^" + std::to_string(log_exponent) + " p";
  }
  out += ")";
  return out;
}

std::vector<Measurement> aggregate_mean(std::span<const Measurement> data) {
  std::map<double, std::pair<double, int>> sums;
  for (const auto& m : data) {
    auto& [sum, count] = sums[m.p];
    sum += m.value;
    ++count;
  }
  std::vector<Measurement> out;
  out.reserve(sums.size());
  for (const auto& [p, sc] : sums) {
    out.push_back({p, sc.first / sc.second});
  }
  return out;
}

ScalingModel fit_scaling_model(std::span<const Measurement> data,
                               const FitOptions& options) {
  auto points = aggregate_mean(data);
  if (points.size() < 3) {
    throw Error("extra-p fit needs >= 3 distinct scale points, got " +
                std::to_string(points.size()));
  }
  const auto n = static_cast<double>(points.size());

  double mean_y = 0;
  for (const auto& m : points) mean_y += m.value;
  mean_y /= n;
  double tss = 0;
  for (const auto& m : points) {
    tss += (m.value - mean_y) * (m.value - mean_y);
  }

  ScalingModel best;
  bool have_best = false;

  for (double i : options.exponents) {
    for (int j : options.log_exponents) {
      if (i == 0.0 && j == 0) {
        // Constant model: c0 = mean, c1 = 0.
        ScalingModel model;
        model.constant = mean_y;
        model.rss = tss;
        model.r_squared = tss == 0 ? 1.0 : 0.0;
        if (!have_best || model.rss < best.rss) {
          best = model;
          have_best = true;
        }
        continue;
      }
      // Basis g(p) = p^i log2(p)^j; OLS for y = c0 + c1 g.
      double sum_g = 0, sum_g2 = 0, sum_y = 0, sum_gy = 0;
      bool degenerate = false;
      std::vector<double> g(points.size());
      for (std::size_t k = 0; k < points.size(); ++k) {
        double p = points[k].p;
        double basis = std::pow(p, i);
        if (j != 0) basis *= std::pow(std::log2(std::max(p, 1.000001)), j);
        if (!std::isfinite(basis)) {
          degenerate = true;
          break;
        }
        g[k] = basis;
        sum_g += basis;
        sum_g2 += basis * basis;
        sum_y += points[k].value;
        sum_gy += basis * points[k].value;
      }
      if (degenerate) continue;
      double denom = n * sum_g2 - sum_g * sum_g;
      if (std::fabs(denom) < 1e-12 * std::max(1.0, sum_g2)) continue;
      double c1 = (n * sum_gy - sum_g * sum_y) / denom;
      double c0 = (sum_y - c1 * sum_g) / n;

      double rss = 0;
      for (std::size_t k = 0; k < points.size(); ++k) {
        double err = points[k].value - (c0 + c1 * g[k]);
        rss += err * err;
      }
      if (!std::isfinite(rss)) continue;
      if (!have_best || rss < best.rss) {
        best.constant = c0;
        best.coefficient = c1;
        best.exponent = i;
        best.log_exponent = j;
        best.rss = rss;
        have_best = true;
      }
    }
  }
  if (!have_best) throw Error("extra-p fit failed: no viable hypothesis");

  // Adjusted R² with 2 fitted parameters.
  if (tss > 0 && n > 2) {
    double r2 = 1.0 - best.rss / tss;
    best.r_squared = 1.0 - (1.0 - r2) * (n - 1) / (n - 2);
  } else {
    best.r_squared = 1.0;
  }
  return best;
}

}  // namespace benchpark::analysis
