#include "src/analysis/trace_bridge.hpp"

#include "src/obs/trace_diff.hpp"

namespace benchpark::analysis::detail {

perf::Profile trace_to_profile(const obs::Trace& trace) {
  perf::Profile profile;
  auto aggregated = obs::aggregate_spans(trace);
  profile.regions.reserve(aggregated.size());
  for (const auto& [path, stats] : aggregated) {
    perf::RegionStat region;
    region.path = path;
    region.count = stats.count;
    region.inclusive_seconds = (stats.total_us + stats.modeled_us) / 1e6;
    profile.regions.push_back(std::move(region));
  }
  profile.metadata = trace.metadata;
  return profile;
}

std::size_t trace_to_metrics(const obs::Trace& trace, MetricsDb& db,
                             const std::string& benchmark,
                             const std::string& system,
                             const std::string& experiment) {
  std::size_t inserted = 0;
  auto insert = [&](const std::string& name, double value,
                    const char* units) {
    ResultRow row;
    row.benchmark = benchmark;
    row.system = system;
    row.experiment = experiment;
    row.fom_name = name;
    row.value = value;
    row.units = units;
    db.insert(std::move(row));
    ++inserted;
  };
  for (const auto& [name, value] : trace.counters) {
    insert(name, static_cast<double>(value), "count");
  }
  for (const auto& [name, value] : trace.gauges) {
    insert(name, value, "gauge");
  }
  return inserted;
}

}  // namespace benchpark::analysis::detail
