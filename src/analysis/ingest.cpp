#include "src/analysis/ingest.hpp"

#include <algorithm>
#include <string_view>

#include "src/support/parallel.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::analysis::detail {

namespace {

/// Rows for one record (pure; runs concurrently across records).
std::vector<ResultRow> rows_for_record(const ExperimentRecord& record) {
  std::vector<ResultRow> rows;
  auto base_row = [&] {
    ResultRow row;
    row.benchmark = record.benchmark;
    row.system = record.system;
    row.experiment = record.experiment;
    row.variables = record.variables;
    return row;
  };
  if (!record.success) {
    // Record the failure under every declared FOM so cross-system
    // comparison tables show CRASHED cells (the Sec. 7.1 signal).
    rows.reserve(record.declared_foms.size());
    for (const auto& spec : record.declared_foms) {
      ResultRow row = base_row();
      row.fom_name = spec.name;
      row.units = spec.units;
      row.success = false;
      rows.push_back(std::move(row));
    }
    return rows;
  }
  rows.reserve(record.foms.size());
  for (const auto& fom : record.foms) {
    if (!fom.numeric) continue;
    ResultRow row = base_row();
    row.fom_name = fom.name;
    row.value = fom.value;
    row.units = fom.units;
    row.success = true;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::vector<ResultRow> rows_from_records(
    const std::vector<ExperimentRecord>& records, int threads) {
  std::vector<std::vector<ResultRow>> per_record(records.size());
  auto build_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      per_record[i] = rows_for_record(records[i]);
    }
  };
  int width = threads == 0 ? support::ThreadPool::default_threads() : threads;
  if (width <= 1 || records.size() < 2) {
    build_range(0, records.size());
  } else {
    support::parallel_for(records.size(), width, build_range);
  }

  std::vector<ResultRow> rows;
  std::size_t total = 0;
  for (const auto& chunk : per_record) total += chunk.size();
  rows.reserve(total);
  for (auto& chunk : per_record) {
    for (auto& row : chunk) rows.push_back(std::move(row));
  }
  return rows;
}

void insert_rows(MetricsDb& db, const std::vector<ResultRow>& rows) {
  for (const auto& row : rows) db.insert(row);
}

std::optional<perf::Profile> profile_from_output(const std::string& output) {
  constexpr std::string_view kMarker = "caliper: region profile";
  auto marker = output.find(kMarker);
  if (marker == std::string::npos) return std::nullopt;

  perf::Profile profile;
  std::size_t pos = marker + kMarker.size();
  if (pos < output.size() && output[pos] == '\n') ++pos;
  while (pos < output.size()) {
    auto eol = output.find('\n', pos);
    if (eol == std::string::npos) eol = output.size();
    std::string_view line(output.data() + pos, eol - pos);
    pos = eol + 1;
    // Profile lines read "<path> <seconds> s"; the first line that does
    // not parse ends the section.
    auto first_space = line.find(' ');
    if (first_space == std::string_view::npos || first_space == 0) break;
    std::string_view rest = line.substr(first_space + 1);
    if (rest.size() < 2 || rest.substr(rest.size() - 2) != " s") break;
    std::string_view number = rest.substr(0, rest.size() - 2);
    if (!support::looks_like_double(number)) break;
    perf::RegionStat region;
    region.path = std::string(line.substr(0, first_space));
    region.count = 1;
    region.inclusive_seconds = support::parse_double(number);
    profile.regions.push_back(std::move(region));
  }
  if (profile.regions.empty()) return std::nullopt;
  std::sort(profile.regions.begin(), profile.regions.end(),
            [](const perf::RegionStat& a, const perf::RegionStat& b) {
              return a.path < b.path;
            });
  return profile;
}

Thicket thicket_from_records(const std::vector<ExperimentRecord>& records,
                             int threads) {
  std::vector<std::optional<perf::Profile>> profiles(records.size());
  auto parse_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      profiles[i] = profile_from_output(records[i].output);
    }
  };
  int width = threads == 0 ? support::ThreadPool::default_threads() : threads;
  if (width <= 1 || records.size() < 2) {
    parse_range(0, records.size());
  } else {
    support::parallel_for(records.size(), width, parse_range);
  }

  Thicket thicket;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!profiles[i]) continue;
    const auto& record = records[i];
    perf::Profile profile = std::move(*profiles[i]);
    profile.metadata["benchmark"] = record.benchmark;
    profile.metadata["system"] = record.system;
    profile.metadata["experiment"] = record.experiment;
    thicket.add_profile(record.system + "/" + record.experiment,
                        std::move(profile));
  }
  return thicket;
}

}  // namespace benchpark::analysis::detail
