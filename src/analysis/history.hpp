// FOM time-series history: the layer that makes the stack *continuous*.
//
// Every completed workflow appends one sample per (benchmark, system,
// experiment, figure-of-merit) series — value, units, success, and the
// experiment's content hash (spec DAG hashes + rendered script + fault
// plan, the PR-7 store key) — so FOMs can be watched *over time* across
// runs, processes, and tenants (Vogelsang et al.'s continuous-
// benchmarking workflow; SCOPE's per-configuration history).
//
// Persistence rides the content-addressed store: one "history" record
// per sample, keyed "<series>\x1f<zero-padded sequence>", so a reloaded
// store replays every series in exact append order and a new run simply
// continues the sequence. Appends are serialized by callers in
// submission order (Driver::run_workflow appends after analyze, in
// experiment order), which is what makes history sequences reproducible
// run-to-run at any thread width.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/store/store.hpp"

namespace benchpark::analysis {

/// Identity of one FOM series. The experiment field is the expanded
/// experiment name, so a scaling matrix contributes one series per cell.
struct SeriesKey {
  std::string benchmark;
  std::string system;
  std::string experiment;
  std::string fom;

  /// "\x1f"-joined storage encoding (fields never contain 0x1f).
  [[nodiscard]] std::string encode() const;
  static SeriesKey decode(std::string_view text);
  /// Human-readable "benchmark/system/experiment:fom".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const SeriesKey&, const SeriesKey&) = default;
  friend auto operator<=>(const SeriesKey&, const SeriesKey&) = default;
};

/// One recorded observation of a series.
struct HistorySample {
  /// 1-based position within the series (the time axis).
  std::uint64_t sequence = 0;
  double value = 0;
  std::string units;
  /// Content hash of the configuration that produced the value (the
  /// experiment store key: spec DAG hashes, rendered script, variables,
  /// fault-plan fingerprint). Bisection walks the distinct hashes.
  std::string config_hash;
  bool success = true;
};

/// The persistent FOM time-series store. Thread-safe; when opened on a
/// store handle every append is also put() into the journal (kind
/// "history") — callers flush. A null handle gives a purely in-memory
/// history (tests, synthetic series).
class FomHistory {
public:
  /// Journal record kind for history samples.
  static constexpr const char* kKind = "history";

  FomHistory() = default;
  /// Load every recorded series from `store` (null = start empty).
  /// Corrupt individual records are skipped with a warning.
  explicit FomHistory(store::StoreHandle store);

  // Holds a mutex; construct in place and pass by reference/pointer.
  FomHistory(const FomHistory&) = delete;
  FomHistory& operator=(const FomHistory&) = delete;

  /// Append one observation; assigns and returns the sample's sequence
  /// number within its series. Persists through the store when attached.
  std::uint64_t append(const SeriesKey& key, double value,
                       std::string_view units, std::string_view config_hash,
                       bool success = true);

  /// All series keys, sorted.
  [[nodiscard]] std::vector<SeriesKey> keys() const;
  /// Samples of one series in sequence order (empty when unknown).
  [[nodiscard]] std::vector<HistorySample> series(const SeriesKey& key) const;
  /// Number of samples recorded for one series.
  [[nodiscard]] std::size_t series_size(const SeriesKey& key) const;
  /// Total samples across every series.
  [[nodiscard]] std::size_t size() const;
  /// Records skipped while loading (corrupt/unparsable).
  [[nodiscard]] std::size_t skipped_records() const { return skipped_; }

  [[nodiscard]] const store::StoreHandle& store() const { return store_; }

private:
  mutable std::mutex mu_;
  std::map<SeriesKey, std::vector<HistorySample>> series_;
  store::StoreHandle store_;
  std::size_t skipped_ = 0;
};

}  // namespace benchpark::analysis
