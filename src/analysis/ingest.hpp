// Parallel result ingestion: completed experiments -> MetricsDb rows and
// Thicket profile columns (Figure 6's right-hand side, Section 5).
//
// A campaign's analyze step turns every ExperimentResult into (a) one
// ResultRow per figure of merit — CRASHED experiments contribute a
// success=false row per *declared* FOM so cross-system tables show the
// Section 7.1 signal — and (b) one Thicket column per Caliper-annotated
// output. Both transformations are pure per-record functions, so they
// fan out on the shared ThreadPool; only the final db/thicket insertion
// is serial, in record order, keeping sequence numbers deterministic.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/fom.hpp"
#include "src/analysis/metrics_db.hpp"
#include "src/analysis/thicket.hpp"
#include "src/perf/caliper.hpp"

namespace benchpark::analysis {

/// One completed experiment, flattened to what ingestion needs (no
/// dependency on the ramble layer's result types).
struct ExperimentRecord {
  std::string benchmark;
  std::string system;
  std::string experiment;  // expanded experiment name
  /// Transparent comparator: same type as ramble::VariableMap, so the
  /// workspace's variable assignments move here without conversion.
  std::map<std::string, std::string, std::less<>> variables;
  /// The application's declared FOM specs (failure rows need the names
  /// and units even when nothing was extracted).
  std::vector<FomSpec> declared_foms;
  /// FOMs actually extracted from the output.
  std::vector<FomValue> foms;
  bool success = false;
  /// Raw experiment stdout (Caliper region profiles are parsed out of
  /// it); may be empty.
  std::string output;
};

namespace detail {

/// Build the metrics rows for a batch of records, in record order:
/// a failed record yields one success=false row per declared FOM; a
/// successful record yields one row per numeric extracted FOM. Rows are
/// built in parallel (threads: 0 = pool default, 1 = serial) and
/// assembled by index, so the returned vector is identical at every
/// width. Sequence numbers are assigned later, by insert_rows.
std::vector<ResultRow> rows_from_records(
    const std::vector<ExperimentRecord>& records, int threads = 0);

/// Insert rows serially, in order (MetricsDb sequence numbers are the
/// "time" axis — they must not depend on thread interleaving).
void insert_rows(MetricsDb& db, const std::vector<ResultRow>& rows);

/// Parse the "caliper: region profile" section a Caliper-annotated
/// binary appends to stdout ("main 0.1 s" lines) into a Profile;
/// nullopt when the output has no profile section.
std::optional<perf::Profile> profile_from_output(const std::string& output);

/// Compose a Thicket from every record whose output carries a Caliper
/// region profile. Columns are named "<system>/<experiment>" and carry
/// benchmark/system/experiment metadata for filter() predicates.
/// Profiles are parsed in parallel; columns are added in record order.
Thicket thicket_from_records(const std::vector<ExperimentRecord>& records,
                             int threads = 0);

}  // namespace detail

// Legacy entry points, superseded by run_analysis(AnalysisRequest) with a
// `records` source (src/analysis/analysis.hpp).

[[deprecated("use analysis::run_analysis(AnalysisRequest)")]]
inline std::vector<ResultRow> rows_from_records(
    const std::vector<ExperimentRecord>& records, int threads = 0) {
  return detail::rows_from_records(records, threads);
}

[[deprecated("use analysis::run_analysis(AnalysisRequest)")]]
inline void insert_rows(MetricsDb& db, const std::vector<ResultRow>& rows) {
  detail::insert_rows(db, rows);
}

[[deprecated("use analysis::run_analysis(AnalysisRequest)")]]
inline std::optional<perf::Profile> profile_from_output(
    const std::string& output) {
  return detail::profile_from_output(output);
}

[[deprecated("use analysis::run_analysis(AnalysisRequest)")]]
inline Thicket thicket_from_records(
    const std::vector<ExperimentRecord>& records, int threads = 0) {
  return detail::thicket_from_records(records, threads);
}

}  // namespace benchpark::analysis
