// The one analysis entry point: run_analysis(AnalysisRequest).
//
// PR 4 collapsed four concretize overloads into
// concretize_all(ConcretizeRequest); PR 5 gave the run engine
// Workspace::run_all(RunRequest). This header does the same for the
// analysis stack: the scattered entry points (Dashboard, ingest free
// functions, trace bridging) become one request/result pair. A request
// names its *sources* (experiment records, a collected trace, the FOM
// history, a pre-built metrics db), the *detectors* to run over them
// (change-point scan, bisection attribution, Extra-P scaling fits), and
// the *report formats* to render (text, HTML, JSON). Every legacy entry
// point is now a [[deprecated]] thin wrapper over the same internals.
//
// Results are deterministic: ingestion is ordered by submission index,
// detection and bisection are pure functions of the history, and the
// rendered JSON is byte-stable across identical re-runs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/analysis/bisect.hpp"
#include "src/analysis/detect.hpp"
#include "src/analysis/extrap.hpp"
#include "src/analysis/history.hpp"
#include "src/analysis/ingest.hpp"
#include "src/analysis/metrics_db.hpp"
#include "src/analysis/thicket.hpp"
#include "src/obs/trace.hpp"
#include "src/store/store.hpp"

namespace benchpark::analysis {

struct AnalysisRequest {
  // ---- sources (any combination; all optional) -----------------------
  /// Completed experiments to ingest (MetricsDb rows in record order +
  /// one Thicket column per Caliper-annotated output).
  const std::vector<ExperimentRecord>* records = nullptr;
  /// A collected trace: counters/gauges become rows under the
  /// trace_* labels below; its span tree becomes a Thicket column.
  const obs::Trace* trace = nullptr;
  std::string trace_benchmark;
  std::string trace_system;
  std::string trace_experiment;
  /// FOM time-series history to scan for change points.
  const FomHistory* history = nullptr;
  /// Pre-built metrics rows to scan (the legacy Dashboard source); one
  /// detector series per (benchmark, system, fom) aggregated across
  /// experiments, like Dashboard::detect_regressions did.
  const MetricsDb* metrics = nullptr;
  /// Persistent store: when set and `history` is null, the history is
  /// loaded from it; bisection replays "runtime_seconds" candidates
  /// through the store's experiment records (the store-warm run engine).
  store::StoreHandle store;

  // ---- sinks (optional; callers accumulating across calls) -----------
  /// Ingest into these instead of the result's own db/thicket.
  MetricsDb* metrics_out = nullptr;
  Thicket* thicket_out = nullptr;

  // ---- selection ------------------------------------------------------
  std::string benchmark;           // empty = all
  std::string system;              // empty = all
  std::vector<std::string> foms;   // empty = all

  // ---- detection / attribution / modeling -----------------------------
  bool detect = true;
  DetectorConfig detector;
  /// Per-FOM direction overrides ("gflops" -> false); unlisted FOMs use
  /// detector.higher_is_worse.
  std::map<std::string, bool> higher_is_worse_overrides;
  bool bisect = true;
  BisectOptions bisection;
  /// Fit an Extra-P scaling model per (benchmark, system, fom) over the
  /// scanned rows' `scaling_variable`.
  bool fit_scaling = false;
  std::string scaling_variable = "n_ranks";

  // ---- report formats -------------------------------------------------
  bool render_text = false;
  bool render_html = false;
  bool render_json = false;

  /// Ingestion fan-out width (0 = pool default, 1 = serial).
  int threads = 0;
};

/// Everything the detectors concluded about one series.
struct SeriesReport {
  SeriesKey key;
  std::string units;
  std::vector<HistorySample> samples;
  std::vector<ChangePoint> change_points;
  /// Classification of the latest successful sample; `has_latest` is
  /// false (and latest_error explains why) below the warmup minimum.
  bool has_latest = false;
  Classification latest;
  std::string latest_error;
  /// Attribution of the most recent regression change point.
  bool bisected = false;
  BisectResult bisection;
  std::string bisect_error;
};

/// One Extra-P fit per (benchmark, system, fom) workload.
struct ScalingFit {
  std::string benchmark;
  std::string system;
  std::string fom;
  bool ok = false;
  ScalingModel model;
  std::string error;
};

struct AnalysisStats {
  std::size_t series_scanned = 0;
  std::size_t samples_scanned = 0;
  std::size_t change_points = 0;
  std::size_t regressions = 0;     // change points classified regression
  std::size_t improvements = 0;
  std::size_t noisy_series = 0;    // latest verdict == noisy
  std::size_t bisections = 0;      // successful attributions
  std::size_t bisect_replays = 0;
  std::size_t rows_ingested = 0;
  std::size_t thicket_columns = 0;
  std::size_t fits = 0;
};

struct AnalysisResult {
  std::vector<SeriesReport> series;
  std::vector<ScalingFit> fits;
  AnalysisStats stats;
  /// Ingested rows in submission order (also inserted into the db sink).
  std::vector<ResultRow> ingested_rows;
  /// Ingestion targets when the request named no sinks.
  MetricsDb db;
  Thicket thicket;
  /// Rendered reports (empty unless requested).
  std::string text;
  std::string html;
  std::string json;

  /// Series whose most recent change point is an unresolved regression.
  [[nodiscard]] std::size_t regressed_series() const;
};

/// Run every requested analysis. Invalid requests (no sources at all)
/// throw AnalysisError; per-series detector/bisection shortfalls are
/// reported in the series entries, never thrown.
AnalysisResult run_analysis(const AnalysisRequest& request);

}  // namespace benchpark::analysis
