// Deterministic change-point / regression detection over FOM series.
//
// Each sample is judged against a rolling baseline window of the samples
// before it (within the current regime): the baseline center is the
// median, the noise scale is the MAD scaled to a robust sigma (1.4826 ×
// median absolute deviation), floored so a perfectly flat series still
// has a nonzero scale. A sample more than `threshold` sigmas AND more
// than `min_relative_change` away from the baseline is a change point —
// a regression or an improvement depending on direction — after which
// the baseline regime resets at the changed value (a confirmed step is
// the new normal, not a permanent alarm). Series whose baseline noise
// is too large relative to its center are classified `noisy` instead of
// alarming. Everything is a pure function of (samples, config): no
// clocks, no randomness, byte-identical verdicts on identical history.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/history.hpp"

namespace benchpark::analysis {

/// What the detector concluded about one sample.
enum class Verdict { ok, regression, improvement, noisy };

[[nodiscard]] std::string_view verdict_name(Verdict v);

struct DetectorConfig {
  /// Baseline samples required before any sample can be classified.
  std::size_t warmup = 5;
  /// Rolling baseline window width (samples, within the current regime).
  std::size_t window = 20;
  /// Change-point threshold in robust sigmas.
  double threshold = 4.0;
  /// Minimum |value - baseline| / |baseline| for a change to count;
  /// guards against alarming on numerically-tiny moves of a flat series.
  double min_relative_change = 0.01;
  /// Baseline sigma / |median| above which the series is too noisy to
  /// judge (verdict `noisy` instead of regression/improvement).
  double max_noise_ratio = 0.5;
  /// True when larger values are worse (times); false for rates.
  bool higher_is_worse = true;
};

/// Classification of one sample against its baseline window.
struct Classification {
  Verdict verdict = Verdict::ok;
  double value = 0;
  double baseline_median = 0;
  double noise_sigma = 0;
  /// |value - median| / sigma.
  double score = 0;
  /// [0, 1]: 0.5 at exactly `threshold` sigmas, saturating at 2×.
  double confidence = 0;
  std::size_t baseline_samples = 0;
};

/// A confirmed change point found by scan().
struct ChangePoint {
  std::size_t index = 0;       // position in the scanned sample vector
  std::uint64_t sequence = 0;  // HistorySample::sequence at that index
  Classification classification;
  /// Config hash of the changed sample and of the last baseline sample
  /// before it (bisection's initial bad/good endpoints).
  std::string config_hash;
  std::string baseline_config_hash;
};

/// Classify `value` against an explicit baseline (the scan/classify
/// primitives below are built on this). `baseline` must hold >=
/// config.warmup values or InsufficientHistoryError is thrown.
[[nodiscard]] Classification classify_against(
    const std::vector<double>& baseline, double value,
    const DetectorConfig& config);

/// Classify the latest sample of a series against the rolling baseline
/// formed by the samples before it (regime-aware: the baseline restarts
/// after the most recent confirmed change point). Throws
/// InsufficientHistoryError when the current regime has fewer than
/// config.warmup baseline samples.
[[nodiscard]] Classification classify_latest(
    const std::vector<HistorySample>& samples, const DetectorConfig& config);

/// Full sequential scan: walk the series in order, classify every sample
/// with at least `warmup` baseline samples in the current regime, emit a
/// ChangePoint per regression/improvement, and reset the regime there.
/// Deterministic; failed samples (success == false) are skipped as
/// baseline candidates and never classified.
[[nodiscard]] std::vector<ChangePoint> scan(
    const std::vector<HistorySample>& samples, const DetectorConfig& config);

}  // namespace benchpark::analysis
