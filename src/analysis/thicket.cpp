#include "src/analysis/thicket.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::analysis {

void Thicket::add_profile(std::string column, perf::Profile profile) {
  for (const auto& c : columns_) {
    if (c.name == column) {
      throw Error("thicket already has a profile named '" + column + "'");
    }
  }
  columns_.push_back({std::move(column), std::move(profile)});
}

std::vector<std::string> Thicket::column_names() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.name);
  return out;
}

std::vector<std::string> Thicket::paths() const {
  std::set<std::string> unique;
  for (const auto& c : columns_) {
    for (const auto& r : c.profile.regions) unique.insert(r.path);
  }
  return {unique.begin(), unique.end()};
}

std::optional<double> Thicket::value(std::string_view path,
                                     std::string_view column) const {
  for (const auto& c : columns_) {
    if (c.name != column) continue;
    if (const auto* stat = c.profile.find(path)) {
      return stat->inclusive_seconds;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::vector<RowStats> Thicket::stats() const {
  std::vector<RowStats> out;
  for (const auto& path : paths()) {
    auto row = stats_for(path);
    if (row) out.push_back(std::move(*row));
  }
  return out;
}

std::optional<RowStats> Thicket::stats_for(std::string_view path) const {
  RowStats row;
  row.path = std::string(path);
  double sum = 0, sum2 = 0;
  for (const auto& c : columns_) {
    const auto* stat = c.profile.find(path);
    if (!stat) continue;
    double v = stat->inclusive_seconds;
    if (row.present_in == 0) {
      row.min = row.max = v;
    } else {
      row.min = std::min(row.min, v);
      row.max = std::max(row.max, v);
    }
    sum += v;
    sum2 += v * v;
    ++row.present_in;
  }
  if (row.present_in == 0) return std::nullopt;
  auto n = static_cast<double>(row.present_in);
  row.mean = sum / n;
  row.stddev = std::sqrt(std::max(0.0, sum2 / n - row.mean * row.mean));
  return row;
}

Thicket Thicket::filter(
    const std::function<bool(const std::map<std::string, std::string>&)>&
        pred) const {
  Thicket out;
  for (const auto& c : columns_) {
    if (pred(c.profile.metadata)) out.columns_.push_back(c);
  }
  return out;
}

support::Table Thicket::to_table() const {
  std::vector<std::string> header{"region"};
  for (const auto& c : columns_) header.push_back(c.name);
  support::Table table(header);
  for (const auto& path : paths()) {
    std::vector<std::string> row{path};
    for (const auto& c : columns_) {
      const auto* stat = c.profile.find(path);
      row.push_back(stat ? support::format_double(stat->inclusive_seconds, 5)
                         : "-");
    }
    table.add_row(std::move(row));
  }
  return table;
}

}  // namespace benchpark::analysis
