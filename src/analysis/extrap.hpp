// Extra-P style analytical performance modeling (Figure 14; Calotoiu et
// al., SC'13).
//
// Extra-P fits measurements f(p) against the Performance Model Normal
// Form. We implement the single-term PMNF the paper's figure shows:
//
//     f(p) = c0 + c1 · p^i · log2(p)^j
//
// with i drawn from a fixed exponent set and j in {0, 1, 2}. For each
// hypothesis the coefficients come from ordinary least squares (closed
// form for two parameters); the winning hypothesis minimizes the residual
// sum of squares, with adjusted R² reported. Figure 14's MPI_Bcast data
// yields f(p) = -0.636 + 0.0466 · p^(1) — bench/figure14_extrap.cpp
// regenerates exactly that shape from the simulated CTS system.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace benchpark::analysis {

/// One measurement: metric value at `p` processes (or any scale axis).
struct Measurement {
  double p = 0;
  double value = 0;
};

/// A fitted single-term model: constant + coefficient * p^exponent *
/// log2(p)^log_exponent.
struct ScalingModel {
  double constant = 0;
  double coefficient = 0;
  double exponent = 0;
  int log_exponent = 0;

  double rss = 0;          // residual sum of squares
  double r_squared = 0;    // adjusted R²

  [[nodiscard]] double evaluate(double p) const;
  /// Printed the way Extra-P does: "-0.6355 + 0.0466 * p^(1)".
  [[nodiscard]] std::string str() const;
  /// Complexity class rendering: "O(p^1)", "O(log^2 p)", "O(1)".
  [[nodiscard]] std::string complexity() const;
};

struct FitOptions {
  /// Candidate exponents i (Extra-P's default search space subset).
  std::vector<double> exponents{0.0, 0.25, 1.0 / 3, 0.5, 2.0 / 3, 0.75,
                                1.0, 1.25, 4.0 / 3, 1.5, 2.0, 3.0};
  /// Candidate log exponents j.
  std::vector<int> log_exponents{0, 1, 2};
};

/// Fit the best single-term model. Requires >= 3 distinct measurements;
/// throws benchpark::Error otherwise.
ScalingModel fit_scaling_model(std::span<const Measurement> data,
                               const FitOptions& options = {});

/// Convenience: mean of repeated measurements at the same p before
/// fitting (Extra-P's "mean" aggregation; the figure plots
/// "Total time_mean").
std::vector<Measurement> aggregate_mean(std::span<const Measurement> data);

}  // namespace benchpark::analysis
