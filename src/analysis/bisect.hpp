// Automatic bisection over a series' recorded config-hash history.
//
// A detected regression says *when* a series got worse; bisection says
// *which configuration* did it. The distinct config hashes of a series
// (in first-appearance order) form the search axis; a Measure callback
// replays one hash and returns its measured value. The default measure
// replays through the (store-warm) run engine's persistence layer: a
// hash whose experiment record is in the content-addressed store comes
// back without executing anything, so a full bisection of N candidate
// configs costs at most ceil(log2(N)) cheap replays. Classification
// against the good/bad cutoff is deterministic, so the attribution is a
// pure function of (history, measure).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/detect.hpp"
#include "src/analysis/history.hpp"

namespace benchpark::analysis {

/// One candidate configuration on the bisection axis.
struct ConfigSpan {
  std::string config_hash;
  std::uint64_t first_sequence = 0;  // first sample recorded under it
  std::uint64_t last_sequence = 0;
  /// Median of the successful samples recorded under this hash (the
  /// value history already knows, before any replay).
  double recorded_value = 0;
  std::size_t samples = 0;
};

/// Distinct config hashes of a series in first-appearance order, each
/// with its recorded-value summary. Failed samples contribute presence
/// but no value; hashes with no successful sample keep recorded_value 0.
[[nodiscard]] std::vector<ConfigSpan> config_spans(
    const std::vector<HistorySample>& samples);

/// Replays one config hash and returns its measured value (nullopt =
/// cannot replay, which makes the bisection inconclusive).
using Measure = std::function<std::optional<double>(const std::string&)>;

struct BisectOptions {
  /// Replay callback; when empty the bisection uses each candidate's
  /// recorded_value (the store-warm replay result history already holds).
  Measure measure;
  /// Direction, shared with the detector that raised the alarm.
  bool higher_is_worse = true;
};

/// One replay decision during the search.
struct BisectStep {
  std::string config_hash;
  double value = 0;
  bool bad = false;
};

struct BisectResult {
  std::string first_bad_hash;
  std::string last_good_hash;
  /// Measured endpoint values and the good/bad decision boundary
  /// (midpoint between them).
  double good_value = 0;
  double bad_value = 0;
  double cutoff = 0;
  /// Midpoint replays performed: <= ceil(log2(bad - good)) for a range
  /// of that many candidate configs.
  std::size_t replays = 0;
  std::vector<BisectStep> steps;
};

/// Binary-search the first bad config between `good_index` and
/// `bad_index` (both indices into `spans`, good < bad; the endpoints'
/// verdicts are taken as given — they came from the detector). Throws
/// BisectionInconclusiveError when a midpoint cannot be replayed or the
/// endpoints do not disagree (good and bad measure the same side of the
/// cutoff).
[[nodiscard]] BisectResult bisect_first_bad(
    const std::vector<ConfigSpan>& spans, std::size_t good_index,
    std::size_t bad_index, const BisectOptions& options = {});

/// Convenience: run a regression's attribution end to end on a series —
/// derive the spans, locate the change point's good/bad endpoints, and
/// bisect between them.
[[nodiscard]] BisectResult bisect_change_point(
    const std::vector<HistorySample>& samples, const ChangePoint& point,
    const BisectOptions& options = {});

}  // namespace benchpark::analysis
