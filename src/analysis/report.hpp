// Renderers for AnalysisResult: text (terminal), HTML (a self-contained
// SCOPE-style page with per-series sparkline tables, regression
// annotations, and Extra-P fits), and JSON (machine-readable, for CI
// gates). All three are pure functions of the result — no clocks, no
// locale, doubles printed with %.17g — so identical analyses render
// byte-identical reports.
#pragma once

#include <string>

namespace benchpark::analysis {

struct AnalysisResult;

[[nodiscard]] std::string render_text_report(const AnalysisResult& result);
[[nodiscard]] std::string render_html_report(const AnalysisResult& result);
[[nodiscard]] std::string render_json_report(const AnalysisResult& result);

}  // namespace benchpark::analysis
