#include "src/analysis/history.hpp"

#include <algorithm>
#include <cstdio>

#include "src/support/log.hpp"
#include "src/yaml/emitter.hpp"
#include "src/yaml/node.hpp"
#include "src/yaml/parser.hpp"

namespace benchpark::analysis {

namespace {

constexpr char kSep = '\x1f';

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Zero-padded decimal so the store's key-ordered iteration replays
/// samples in numeric sequence order.
std::string seq_suffix(std::uint64_t seq) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%012llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

yaml::EmitOptions emit_opts() {
  yaml::EmitOptions opts;
  opts.quote_numeric_strings = true;
  return opts;
}

}  // namespace

std::string SeriesKey::encode() const {
  std::string out;
  out.reserve(benchmark.size() + system.size() + experiment.size() +
              fom.size() + 3);
  out += benchmark;
  out += kSep;
  out += system;
  out += kSep;
  out += experiment;
  out += kSep;
  out += fom;
  return out;
}

SeriesKey SeriesKey::decode(std::string_view text) {
  SeriesKey key;
  std::string* fields[] = {&key.benchmark, &key.system, &key.experiment,
                           &key.fom};
  std::size_t field = 0, start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == kSep) {
      if (field < 4) *fields[field] = std::string(text.substr(start, i - start));
      ++field;
      start = i + 1;
    }
  }
  return key;
}

std::string SeriesKey::str() const {
  return benchmark + "/" + system + "/" + experiment + ":" + fom;
}

FomHistory::FomHistory(store::StoreHandle store) : store_(std::move(store)) {
  if (!store_) return;
  store_->for_each(kKind, [&](const std::string& key,
                              const std::string& value) {
    // key = "<series>\x1f<sequence>"; the series encoding itself has
    // three separators, so the sequence is everything after the fourth.
    std::size_t seps = 0, cut = std::string::npos;
    for (std::size_t i = 0; i < key.size(); ++i) {
      if (key[i] == kSep && ++seps == 4) {
        cut = i;
        break;
      }
    }
    if (cut == std::string::npos) {
      ++skipped_;
      support::Log::warn("history: skipping malformed record key");
      return;
    }
    try {
      SeriesKey series = SeriesKey::decode(std::string_view(key).substr(0, cut));
      yaml::Node n = yaml::parse(value);
      HistorySample sample;
      sample.sequence =
          static_cast<std::uint64_t>(n.at("seq").as_int());
      sample.value = n.at("value").as_double();
      sample.units = n.at("units").as_string_or("");
      sample.config_hash = n.at("config").as_string_or("");
      sample.success = n.at("success").as_bool();
      series_[series].push_back(std::move(sample));
    } catch (const std::exception& e) {
      ++skipped_;
      support::Log::warn(std::string("history: skipping record: ") +
                         e.what());
    }
  });
  // for_each visits in key order (zero-padded sequences), so each series
  // arrives sorted; enforce anyway so a hand-edited journal cannot wedge
  // the detector's sequential scan.
  for (auto& [key, samples] : series_) {
    std::sort(samples.begin(), samples.end(),
              [](const HistorySample& a, const HistorySample& b) {
                return a.sequence < b.sequence;
              });
  }
}

std::uint64_t FomHistory::append(const SeriesKey& key, double value,
                                 std::string_view units,
                                 std::string_view config_hash,
                                 bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& samples = series_[key];
  HistorySample sample;
  sample.sequence = samples.empty() ? 1 : samples.back().sequence + 1;
  sample.value = value;
  sample.units = std::string(units);
  sample.config_hash = std::string(config_hash);
  sample.success = success;
  if (store_) {
    yaml::Node n = yaml::Node::make_mapping();
    n["seq"] = yaml::Node(static_cast<long long>(sample.sequence));
    n["value"] = yaml::Node(fmt_double(sample.value));
    n["units"] = yaml::Node(sample.units);
    n["config"] = yaml::Node(sample.config_hash);
    n["success"] = yaml::Node(sample.success);
    store_->put(kKind, key.encode() + kSep + seq_suffix(sample.sequence),
                yaml::emit(n, emit_opts()));
  }
  samples.push_back(std::move(sample));
  return samples.back().sequence;
}

std::vector<SeriesKey> FomHistory::keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SeriesKey> out;
  out.reserve(series_.size());
  for (const auto& [key, samples] : series_) out.push_back(key);
  return out;
}

std::vector<HistorySample> FomHistory::series(const SeriesKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  return it == series_.end() ? std::vector<HistorySample>{} : it->second;
}

std::size_t FomHistory::series_size(const SeriesKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(key);
  return it == series_.end() ? 0 : it->second.size();
}

std::size_t FomHistory::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, samples] : series_) total += samples.size();
  return total;
}

}  // namespace benchpark::analysis
