#include "src/analysis/bisect.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/error.hpp"

namespace benchpark::analysis {

namespace {

double median_of(std::vector<double> values) {
  const std::size_t n = values.size();
  auto mid = values.begin() + static_cast<std::ptrdiff_t>(n / 2);
  std::nth_element(values.begin(), mid, values.end());
  double upper = *mid;
  if (n % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), mid);
  return 0.5 * (lower + upper);
}

}  // namespace

std::vector<ConfigSpan> config_spans(
    const std::vector<HistorySample>& samples) {
  std::vector<ConfigSpan> spans;
  std::vector<std::vector<double>> values;  // parallel to spans
  for (const auto& s : samples) {
    auto it = std::find_if(spans.begin(), spans.end(),
                           [&](const ConfigSpan& span) {
                             return span.config_hash == s.config_hash;
                           });
    if (it == spans.end()) {
      ConfigSpan span;
      span.config_hash = s.config_hash;
      span.first_sequence = s.sequence;
      spans.push_back(std::move(span));
      values.emplace_back();
      it = spans.end() - 1;
    }
    auto& span = *it;
    span.last_sequence = s.sequence;
    ++span.samples;
    if (s.success) {
      values[static_cast<std::size_t>(it - spans.begin())].push_back(
          s.value);
    }
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (!values[i].empty()) {
      spans[i].recorded_value = median_of(std::move(values[i]));
    }
  }
  return spans;
}

BisectResult bisect_first_bad(const std::vector<ConfigSpan>& spans,
                              std::size_t good_index, std::size_t bad_index,
                              const BisectOptions& options) {
  if (good_index >= bad_index || bad_index >= spans.size()) {
    throw BisectionInconclusiveError(
        "bisection needs good < bad within the config history (good=" +
        std::to_string(good_index) + ", bad=" + std::to_string(bad_index) +
        ", configs=" + std::to_string(spans.size()) + ")");
  }
  auto measure = [&](std::size_t i) -> std::optional<double> {
    if (options.measure) return options.measure(spans[i].config_hash);
    if (spans[i].samples == 0) return std::nullopt;
    return spans[i].recorded_value;
  };

  BisectResult result;
  auto good_v = measure(good_index);
  auto bad_v = measure(bad_index);
  if (!good_v || !bad_v) {
    throw BisectionInconclusiveError(
        "bisection endpoint could not be replayed (config '" +
        (good_v ? spans[bad_index] : spans[good_index]).config_hash + "')");
  }
  result.good_value = *good_v;
  result.bad_value = *bad_v;
  result.cutoff = 0.5 * (result.good_value + result.bad_value);
  const bool bad_above = options.higher_is_worse;
  auto is_bad = [&](double v) {
    return bad_above ? v > result.cutoff : v < result.cutoff;
  };
  if (!is_bad(result.bad_value) || is_bad(result.good_value)) {
    throw BisectionInconclusiveError(
        "bisection endpoints do not disagree (good=" +
        std::to_string(result.good_value) +
        ", bad=" + std::to_string(result.bad_value) + ")");
  }

  std::size_t lo = good_index, hi = bad_index;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    auto v = measure(mid);
    if (!v) {
      throw BisectionInconclusiveError("config '" + spans[mid].config_hash +
                                       "' could not be replayed");
    }
    ++result.replays;
    const bool bad = is_bad(*v);
    result.steps.push_back({spans[mid].config_hash, *v, bad});
    if (bad) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  result.last_good_hash = spans[lo].config_hash;
  result.first_bad_hash = spans[hi].config_hash;
  return result;
}

BisectResult bisect_change_point(const std::vector<HistorySample>& samples,
                                 const ChangePoint& point,
                                 const BisectOptions& options) {
  auto spans = config_spans(samples);
  auto index_of = [&](const std::string& hash) -> std::size_t {
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].config_hash == hash) return i;
    }
    throw BisectionInconclusiveError("config '" + hash +
                                     "' is not in the series history");
  };
  const std::size_t bad = index_of(point.config_hash);
  const std::size_t good = index_of(point.baseline_config_hash);
  if (good == bad) {
    // Same configuration on both sides of the step: the change is
    // environmental (machine drift, noise), not attributable to a spec.
    throw BisectionInconclusiveError(
        "change point and its baseline share config '" + point.config_hash +
        "'; nothing to bisect");
  }
  return bisect_first_bad(spans, good, bad, options);
}

}  // namespace benchpark::analysis
