// The Benchpark results dashboard (Section 5: "We are also looking into
// creating a dashboard for the Benchpark results, which would provide a
// quick glance of the multi-dimensional performance data ... with some
// pre-built plots and visualizations").
//
// Text-mode implementation of the pre-built views: a benchmark × system
// grid of latest FOM values with trend sparklines, per-series regression
// detection (latest value vs. historical mean ± kσ), and the benchmark
// usage ranking Section 5 proposes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/analysis/metrics_db.hpp"

namespace benchpark::analysis {

/// Unicode block sparkline of a series ("▁▂▄▆█").
std::string sparkline(const std::vector<double>& values);

/// A detected performance regression.
struct Regression {
  std::string benchmark;
  std::string system;
  std::string fom_name;
  double latest = 0;
  double baseline_mean = 0;
  double baseline_stddev = 0;
  double sigmas = 0;  // |latest - mean| / stddev

  [[nodiscard]] std::string describe() const;
};

/// Legacy text dashboard, superseded by run_analysis(AnalysisRequest)
/// with a `metrics` source and render_text (src/analysis/analysis.hpp),
/// which adds regime-aware MAD-based detection, bisection attribution,
/// and HTML/JSON output.
class [[deprecated("use analysis::run_analysis(AnalysisRequest)")]]
Dashboard {
public:
  explicit Dashboard(const MetricsDb* db);

  /// The grid view: rows = benchmarks, columns = systems, cells = latest
  /// value of `fom_name` plus a sparkline of its history.
  [[nodiscard]] support::Table grid(const std::string& fom_name) const;

  /// Regression scan: for every (benchmark, system) series of `fom_name`
  /// with >= 4 points, flag the latest point when it sits more than
  /// `threshold_sigmas` from the mean of the preceding points.
  /// `higher_is_worse` selects the direction that counts as a regression
  /// (true for times, false for rates).
  [[nodiscard]] std::vector<Regression> detect_regressions(
      const std::string& fom_name, double threshold_sigmas = 2.0,
      bool higher_is_worse = true) const;

  /// Full text dashboard for one FOM.
  [[nodiscard]] std::string render(const std::string& fom_name) const;

private:
  const MetricsDb* db_;  // not owned
};

}  // namespace benchpark::analysis
