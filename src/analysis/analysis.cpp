#include "src/analysis/analysis.hpp"

#include <algorithm>
#include <optional>

#include "src/analysis/report.hpp"
#include "src/analysis/trace_bridge.hpp"
#include "src/ramble/expansion.hpp"
#include "src/store/persist.hpp"
#include "src/support/error.hpp"

namespace benchpark::analysis {

namespace {

bool match(const std::string& filter, const std::string& value) {
  return filter.empty() || filter == value;
}

bool fom_selected(const AnalysisRequest& request, const std::string& fom) {
  if (request.foms.empty()) return true;
  return std::find(request.foms.begin(), request.foms.end(), fom) !=
         request.foms.end();
}

DetectorConfig detector_for(const AnalysisRequest& request,
                            const std::string& fom) {
  DetectorConfig config = request.detector;
  auto it = request.higher_is_worse_overrides.find(fom);
  if (it != request.higher_is_worse_overrides.end()) {
    config.higher_is_worse = it->second;
  }
  return config;
}

/// Detect / classify / bisect one series whose key+samples+units are
/// already filled in, then file it (and its stats) into the result.
void analyze_series(SeriesReport series, const AnalysisRequest& request,
                    AnalysisResult& result) {
  const DetectorConfig config = detector_for(request, series.key.fom);
  series.change_points = scan(series.samples, config);
  try {
    series.latest = classify_latest(series.samples, config);
    series.has_latest = true;
  } catch (const InsufficientHistoryError& e) {
    series.latest_error = e.what();
  }

  ++result.stats.series_scanned;
  result.stats.samples_scanned += series.samples.size();
  result.stats.change_points += series.change_points.size();
  for (const ChangePoint& p : series.change_points) {
    if (p.classification.verdict == Verdict::regression) {
      ++result.stats.regressions;
    } else if (p.classification.verdict == Verdict::improvement) {
      ++result.stats.improvements;
    }
  }
  if (series.has_latest && series.latest.verdict == Verdict::noisy) {
    ++result.stats.noisy_series;
  }

  if (request.bisect) {
    // Attribute the most recent regression (improvements need no blame).
    const ChangePoint* target = nullptr;
    for (const ChangePoint& p : series.change_points) {
      if (p.classification.verdict == Verdict::regression) target = &p;
    }
    if (target) {
      bool any_config = false;
      for (const auto& s : series.samples) {
        if (!s.config_hash.empty()) any_config = true;
      }
      if (!any_config) {
        series.bisect_error = "series carries no config hashes";
      } else {
        BisectOptions options = request.bisection;
        options.higher_is_worse = config.higher_is_worse;
        if (!options.measure && request.store &&
            series.key.fom == "runtime_seconds") {
          // Replay through the run engine's persistence layer: a config
          // hash is an experiment store key, and its stored record is
          // exactly what a store-warm re-run of that config reports.
          store::StoreHandle store = request.store;
          options.measure =
              [store](const std::string& hash) -> std::optional<double> {
            auto record = store::load_experiment(store, hash);
            if (!record || !record->success) return std::nullopt;
            return record->runtime_seconds;
          };
        }
        try {
          series.bisection =
              bisect_change_point(series.samples, *target, options);
          series.bisected = true;
          ++result.stats.bisections;
          result.stats.bisect_replays += series.bisection.replays;
        } catch (const BisectionInconclusiveError& e) {
          series.bisect_error = e.what();
        }
      }
    }
  }
  result.series.push_back(std::move(series));
}

void analyze_history(const FomHistory& history,
                     const AnalysisRequest& request, AnalysisResult& result) {
  for (const SeriesKey& key : history.keys()) {
    if (!match(request.benchmark, key.benchmark)) continue;
    if (!match(request.system, key.system)) continue;
    if (!fom_selected(request, key.fom)) continue;
    SeriesReport series;
    series.key = key;
    series.samples = history.series(key);
    if (!series.samples.empty()) series.units = series.samples.back().units;
    analyze_series(std::move(series), request, result);
  }
}

/// Legacy Dashboard source: one series per (benchmark, system, fom)
/// aggregated across experiments, sequence = db insertion order.
void analyze_metrics(const MetricsDb& db, const AnalysisRequest& request,
                     AnalysisResult& result) {
  for (const std::string& benchmark : db.distinct_benchmarks()) {
    if (!match(request.benchmark, benchmark)) continue;
    for (const std::string& system : db.distinct_systems()) {
      if (!match(request.system, system)) continue;
      for (const std::string& fom : db.distinct_fom_names()) {
        if (!fom_selected(request, fom)) continue;
        Query q;
        q.benchmark = benchmark;
        q.system = system;
        q.fom_name = fom;
        q.success = true;
        auto rows = db.query(q);
        if (rows.empty()) continue;
        SeriesReport series;
        series.key = {benchmark, system, "*", fom};
        series.units = rows.back()->units;
        series.samples.reserve(rows.size());
        for (const ResultRow* row : rows) {
          HistorySample sample;
          sample.sequence = row->sequence;
          sample.value = row->value;
          sample.units = row->units;
          series.samples.push_back(std::move(sample));
        }
        analyze_series(std::move(series), request, result);
      }
    }
  }
}

void fit_workloads(const MetricsDb& db, const AnalysisRequest& request,
                   AnalysisResult& result) {
  for (const std::string& benchmark : db.distinct_benchmarks()) {
    if (!match(request.benchmark, benchmark)) continue;
    for (const std::string& system : db.distinct_systems()) {
      if (!match(request.system, system)) continue;
      for (const std::string& fom : db.distinct_fom_names()) {
        if (!fom_selected(request, fom)) continue;
        Query q;
        q.benchmark = benchmark;
        q.system = system;
        q.fom_name = fom;
        q.success = true;
        std::vector<Measurement> data;
        for (const ResultRow* row : db.query(q)) {
          auto it = row->variables.find(request.scaling_variable);
          if (it == row->variables.end()) continue;
          double p;
          try {
            p = static_cast<double>(
                ramble::expand_int(it->second, row->variables));
          } catch (const Error&) {
            continue;  // unexpandable scale axis: skip the row, not the fit
          }
          data.push_back({p, row->value});
        }
        if (data.empty()) continue;
        ScalingFit fit;
        fit.benchmark = benchmark;
        fit.system = system;
        fit.fom = fom;
        try {
          fit.model = fit_scaling_model(aggregate_mean(data));
          fit.ok = true;
          ++result.stats.fits;
        } catch (const Error& e) {
          fit.error = e.what();
        }
        result.fits.push_back(std::move(fit));
      }
    }
  }
}

}  // namespace

std::size_t AnalysisResult::regressed_series() const {
  std::size_t count = 0;
  for (const SeriesReport& s : series) {
    if (!s.change_points.empty() &&
        s.change_points.back().classification.verdict ==
            Verdict::regression) {
      ++count;
    }
  }
  return count;
}

AnalysisResult run_analysis(const AnalysisRequest& request) {
  if (!request.records && !request.trace && !request.history &&
      !request.metrics && !request.store) {
    throw AnalysisError(
        "run_analysis: request names no sources (records, trace, history, "
        "metrics, or store)");
  }

  AnalysisResult result;
  MetricsDb& db = request.metrics_out ? *request.metrics_out : result.db;
  Thicket& thicket =
      request.thicket_out ? *request.thicket_out : result.thicket;

  if (request.records) {
    result.ingested_rows =
        detail::rows_from_records(*request.records, request.threads);
    detail::insert_rows(db, result.ingested_rows);
    result.stats.rows_ingested += result.ingested_rows.size();
    if (request.thicket_out) {
      // Appending to a caller-owned thicket: add columns in record order
      // (Thicket has no merge, so parse serially straight into the sink).
      for (const ExperimentRecord& record : *request.records) {
        auto profile = detail::profile_from_output(record.output);
        if (!profile) continue;
        profile->metadata["benchmark"] = record.benchmark;
        profile->metadata["system"] = record.system;
        profile->metadata["experiment"] = record.experiment;
        thicket.add_profile(record.system + "/" + record.experiment,
                            std::move(*profile));
        ++result.stats.thicket_columns;
      }
    } else {
      result.thicket =
          detail::thicket_from_records(*request.records, request.threads);
      result.stats.thicket_columns += result.thicket.num_profiles();
    }
  }

  if (request.trace) {
    result.stats.rows_ingested += detail::trace_to_metrics(
        *request.trace, db, request.trace_benchmark, request.trace_system,
        request.trace_experiment);
    perf::Profile profile = detail::trace_to_profile(*request.trace);
    if (!profile.regions.empty()) {
      profile.metadata["benchmark"] = request.trace_benchmark;
      profile.metadata["system"] = request.trace_system;
      profile.metadata["experiment"] = request.trace_experiment;
      std::string column =
          request.trace_system + "/" + request.trace_experiment;
      if (column == "/") column = "trace";
      thicket.add_profile(std::move(column), std::move(profile));
      ++result.stats.thicket_columns;
    }
  }

  if (request.detect) {
    if (request.history) {
      analyze_history(*request.history, request, result);
    } else if (request.store) {
      FomHistory history(request.store);
      analyze_history(history, request, result);
    }
    if (request.metrics) {
      analyze_metrics(*request.metrics, request, result);
    }
  }

  if (request.fit_scaling) {
    fit_workloads(request.metrics ? *request.metrics : db, request, result);
  }

  if (request.render_text) result.text = render_text_report(result);
  if (request.render_html) result.html = render_html_report(result);
  if (request.render_json) result.json = render_json_report(result);
  return result;
}

}  // namespace benchpark::analysis
