// The metrics database of Figure 6: every CI benchmark run streams its
// extracted figures of merit here, keyed by (benchmark, system,
// experiment, variables). Storing the experiment's exact specification
// with the result is the paper's Section 5 plan for "introspection into
// benchmark performance across systems and time".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/fom.hpp"
#include "src/support/table.hpp"

namespace benchpark::analysis {

/// One stored result row.
struct ResultRow {
  std::uint64_t sequence = 0;  // insertion order (the "time" axis)
  std::string benchmark;
  std::string system;
  std::string experiment;  // expanded experiment name
  /// Transparent comparator: same type as ramble::VariableMap, so rows
  /// copy straight from ExperimentRecord and feed expand_int directly.
  std::map<std::string, std::string, std::less<>> variables;
  std::string fom_name;
  double value = 0;
  std::string units;
  bool success = true;
};

/// Query filter; empty fields match anything.
struct Query {
  std::string benchmark;
  std::string system;
  std::string fom_name;
  std::optional<bool> success;
};

struct Aggregate {
  std::size_t count = 0;
  double mean = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;
};

class MetricsDb {
public:
  /// Insert one row; returns its sequence number.
  std::uint64_t insert(ResultRow row);

  [[nodiscard]] std::vector<const ResultRow*> query(const Query& q) const;
  [[nodiscard]] Aggregate aggregate(const Query& q) const;
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Distinct values of a dimension, for dashboard facets.
  [[nodiscard]] std::vector<std::string> distinct_systems() const;
  [[nodiscard]] std::vector<std::string> distinct_benchmarks() const;
  [[nodiscard]] std::vector<std::string> distinct_fom_names() const;

  /// A time series of (sequence, value) for regression tracking.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, double>> series(
      const Query& q) const;

  /// Dashboard-style table of a query's rows.
  [[nodiscard]] support::Table to_table(const Query& q) const;

private:
  std::vector<ResultRow> rows_;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace benchpark::analysis
