#include "src/archspec/microarch.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::archspec {

using support::contains;
using support::split;
using support::split_first;
using support::to_lower;
using support::trim;

Microarchitecture::Microarchitecture(std::string name,
                                     std::vector<std::string> parents,
                                     std::string vendor,
                                     std::set<std::string> features,
                                     int generation)
    : name_(std::move(name)),
      parents_(std::move(parents)),
      vendor_(std::move(vendor)),
      features_(std::move(features)),
      generation_(generation) {}

const MicroarchDatabase& MicroarchDatabase::instance() {
  static const MicroarchDatabase db;
  return db;
}

void MicroarchDatabase::add(Microarchitecture march) {
  // Features are cumulative: inherit the union of all parents' features.
  std::set<std::string> features = march.features();
  for (const auto& parent_name : march.parents()) {
    const auto& parent = get(parent_name);
    features.insert(parent.features().begin(), parent.features().end());
  }
  Microarchitecture resolved(march.name(), march.parents(), march.vendor(),
                             std::move(features), march.generation());
  auto name = resolved.name();
  entries_.insert_or_assign(std::move(name), std::move(resolved));
}

MicroarchDatabase::MicroarchDatabase() {
  // --- generic x86_64 feature levels -----------------------------------
  add({"x86_64", {}, "generic", {"sse2"}});
  add({"x86_64_v2", {"x86_64"}, "generic", {"sse4_2", "popcnt"}});
  add({"x86_64_v3", {"x86_64_v2"}, "generic", {"avx", "avx2", "fma", "bmi2"}});
  add({"x86_64_v4", {"x86_64_v3"}, "generic",
       {"avx512f", "avx512bw", "avx512dq", "avx512vl"}});

  // --- Intel ------------------------------------------------------------
  add({"nehalem", {"x86_64"}, "GenuineIntel", {"sse4_2", "popcnt"}});
  add({"sandybridge", {"nehalem"}, "GenuineIntel", {"avx"}});
  add({"haswell", {"sandybridge"}, "GenuineIntel", {"avx2", "fma", "bmi2"}});
  add({"broadwell", {"haswell"}, "GenuineIntel", {"adx", "rdseed"}});
  add({"skylake", {"broadwell"}, "GenuineIntel", {"clflushopt", "xsavec"}});
  add({"skylake_avx512", {"skylake"}, "GenuineIntel",
       {"avx512f", "avx512cd", "avx512bw", "avx512dq", "avx512vl"}});
  add({"cascadelake", {"skylake_avx512"}, "GenuineIntel", {"avx512_vnni"}});
  add({"icelake", {"cascadelake"}, "GenuineIntel",
       {"avx512_vbmi2", "avx512_bitalg", "gfni", "vaes"}});
  add({"sapphirerapids", {"icelake"}, "GenuineIntel",
       {"amx_bf16", "amx_tile", "avx512_bf16"}});

  // --- AMD ----------------------------------------------------------------
  add({"zen", {"x86_64_v3"}, "AuthenticAMD", {"clzero", "sha_ni"}, 1});
  add({"zen2", {"zen"}, "AuthenticAMD", {"clwb", "rdpid"}, 2});
  add({"zen3", {"zen2"}, "AuthenticAMD", {"vaes", "vpclmulqdq", "pku"}, 3});
  add({"zen4", {"zen3"}, "AuthenticAMD",
       {"avx512f", "avx512bw", "avx512_bf16"}, 4});

  // --- IBM Power ------------------------------------------------------------
  add({"ppc64le", {}, "generic", {"altivec"}});
  add({"power8le", {"ppc64le"}, "IBM", {"vsx", "htm"}, 8});
  add({"power9le", {"power8le"}, "IBM", {"ieee128", "darn"}, 9});
  add({"power10le", {"power9le"}, "IBM", {"mma"}, 10});

  // --- ARM ------------------------------------------------------------------
  add({"aarch64", {}, "generic", {"asimd"}});
  add({"armv8.2a", {"aarch64"}, "generic", {"fphp", "dotprod"}});
  add({"graviton3", {"armv8.2a"}, "ARM", {"sve", "bf16", "i8mm"}});
  add({"a64fx", {"armv8.2a"}, "Fujitsu", {"sve", "fp16"}});
}

const Microarchitecture* MicroarchDatabase::find(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

const Microarchitecture& MicroarchDatabase::get(std::string_view name) const {
  const auto* found = find(name);
  if (!found) {
    throw SystemError("unknown microarchitecture '" + std::string(name) + "'");
  }
  return *found;
}

std::vector<std::string> MicroarchDatabase::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, m] : entries_) out.push_back(name);
  return out;
}

std::vector<std::string> MicroarchDatabase::ancestors(
    std::string_view name) const {
  std::vector<std::string> out;
  std::vector<std::string> frontier{std::string(name)};
  while (!frontier.empty()) {
    auto current = frontier.front();
    frontier.erase(frontier.begin());
    for (const auto& parent : get(current).parents()) {
      if (std::find(out.begin(), out.end(), parent) == out.end()) {
        out.push_back(parent);
        frontier.push_back(parent);
      }
    }
  }
  return out;
}

bool MicroarchDatabase::compatible(std::string_view host,
                                   std::string_view target) const {
  if (host == target) return true;
  const auto& h = get(host);
  const auto& t = get(target);
  // Compatible iff target is an ancestor of host, or host's feature set is
  // a superset of target's within the same family.
  auto ancestors_of_host = ancestors(host);
  if (std::find(ancestors_of_host.begin(), ancestors_of_host.end(),
                std::string(target)) != ancestors_of_host.end()) {
    return true;
  }
  if (family(host) != family(target)) return false;
  return std::includes(h.features().begin(), h.features().end(),
                       t.features().begin(), t.features().end());
}

std::string MicroarchDatabase::family(std::string_view name) const {
  std::string current(name);
  while (true) {
    const auto& m = get(current);
    if (m.parents().empty()) return current;
    current = m.parents().front();
  }
}

// ---------------------------------------------------- kernel base parameters

std::map<std::string, std::string> kernel_base_parameters(
    std::string_view target) {
  const auto& db = MicroarchDatabase::instance();
  const auto* march = db.find(target);

  // Conservative scalar defaults for unknown targets.
  int vector_doubles = 1;
  bool fma = false;
  if (march) {
    if (march->has_feature("avx512f")) {
      vector_doubles = 8;
    } else if (march->has_feature("avx2") || march->has_feature("avx")) {
      vector_doubles = 4;
    } else if (march->has_feature("sse2") || march->has_feature("vsx") ||
               march->has_feature("asimd") || march->has_feature("altivec")) {
      vector_doubles = 2;
    }
    fma = march->has_feature("fma") || march->has_feature("vsx") ||
          march->has_feature("asimd");
  }

  std::map<std::string, std::string> params;
  params["vector_doubles"] = std::to_string(vector_doubles);
  params["fma"] = fma ? "1" : "0";
  // Register tiling tracks the vector width: NR spans two vectors so the
  // microkernel keeps load latency hidden; MR stays at 4 rows.
  params["gemm_mr"] = "4";
  params["gemm_nr"] = std::to_string(std::max(2, vector_doubles) * 2);
  params["gemm_kc"] = "256";
  params["fft_radix"] = "2";
  params["ra_batch"] = "64";
  return params;
}

// ------------------------------------------------------------------- flags

std::string optimization_flags(std::string_view compiler_name,
                               const spec::Version& compiler_version,
                               std::string_view target) {
  const auto& db = MicroarchDatabase::instance();
  const auto& march = db.get(target);  // throws for unknown target
  std::string family = db.family(target);
  std::string name = to_lower(compiler_name);

  auto at_least = [&](const char* v) {
    return compiler_version >= spec::Version(v);
  };

  if (name == "gcc" || name == "clang" || name == "rocmcc" ||
      name == "cce") {
    if (family == "ppc64le") {
      // GCC spells power targets -mcpu=power9.
      if (march.generation() > 0) {
        return "-mcpu=power" + std::to_string(march.generation());
      }
      return "-mcpu=native";
    }
    std::string t(target);
    // Generic levels are spelled x86-64-v3 and need GCC >= 11 / Clang >= 12.
    if (support::starts_with(t, "x86_64")) {
      bool supported = (name == "gcc") ? at_least("11") : at_least("12");
      if (t == "x86_64") return "-march=x86-64 -mtune=generic";
      if (!supported) return "-march=x86-64 -mtune=generic";
      return "-march=" + support::replace_all(t, "x86_64_", "x86-64-");
    }
    if (t == "zen" ) return "-march=znver1";
    if (t == "zen2") return "-march=znver2";
    if (t == "zen3") {
      bool supported = (name == "gcc") ? at_least("10.3") : at_least("12");
      return supported ? "-march=znver3" : "-march=znver2";
    }
    if (t == "zen4") {
      bool supported = (name == "gcc") ? at_least("12.3") : at_least("16");
      return supported ? "-march=znver4" : "-march=znver3";
    }
    if (family == "aarch64") return "-mcpu=native";
    return "-march=" + t;
  }
  if (name == "intel" || name == "oneapi" || name == "icx") {
    if (family != "x86_64") {
      throw SystemError("intel compilers only target x86_64, not " +
                        std::string(target));
    }
    if (contains(target, "skylake_avx512") || contains(target, "cascadelake"))
      return "-xCORE-AVX512";
    if (march.has_feature("avx512f")) return "-xCORE-AVX512";
    if (march.has_feature("avx2")) return "-xCORE-AVX2";
    return "-msse2";
  }
  if (name == "xl" || name == "xlc") {
    if (family != "ppc64le") {
      throw SystemError("IBM XL only targets ppc64le, not " +
                        std::string(target));
    }
    return "-qarch=pwr" + std::to_string(march.generation());
  }
  if (name == "nvhpc" || name == "pgi") return "-tp=native";
  // Unknown compiler: be conservative.
  return "-O2";
}

// ----------------------------------------------------------------- detection

std::string detect_from_cpuinfo(std::string_view cpuinfo_text) {
  std::string vendor;
  std::set<std::string> flags;
  std::string cpu_line;
  for (const auto& line : split(cpuinfo_text, '\n')) {
    auto [key_raw, value_raw] = split_first(line, ':');
    auto key = trim(key_raw);
    auto value = trim(value_raw);
    if (key == "vendor_id") {
      vendor = value;
    } else if (key == "flags" || key == "Features") {
      for (const auto& f : support::split_ws(value)) flags.insert(f);
    } else if (key == "cpu") {
      cpu_line = to_lower(value);
    }
  }

  // Power systems identify via the "cpu" line.
  if (contains(cpu_line, "power10")) return "power10le";
  if (contains(cpu_line, "power9")) return "power9le";
  if (contains(cpu_line, "power8")) return "power8le";

  if (vendor.empty() && flags.empty()) {
    throw SystemError("unrecognizable cpuinfo");
  }

  auto has = [&](const char* f) { return flags.count(f) > 0; };

  if (vendor == "AuthenticAMD") {
    if (has("avx512f")) return "zen4";
    if (has("vaes") && has("pku")) return "zen3";
    if (has("clwb")) return "zen2";
    if (has("clzero")) return "zen";
  }
  if (vendor == "GenuineIntel") {
    if (has("amx_tile")) return "sapphirerapids";
    if (has("avx512_vbmi2")) return "icelake";
    if (has("avx512_vnni") || has("avx512vnni")) return "cascadelake";
    if (has("avx512f")) return "skylake_avx512";
    if (has("clflushopt")) return "skylake";
    if (has("adx")) return "broadwell";
    if (has("avx2")) return "haswell";
    if (has("avx")) return "sandybridge";
    if (has("sse4_2")) return "nehalem";
  }
  // Generic fallback by feature level.
  if (has("avx512f")) return "x86_64_v4";
  if (has("avx2")) return "x86_64_v3";
  if (has("sse4_2")) return "x86_64_v2";
  if (has("asimd")) return "aarch64";
  return "x86_64";
}

std::string detect_host() {
  std::ifstream in("/proc/cpuinfo");
  if (!in) return "x86_64";
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    return detect_from_cpuinfo(buffer.str());
  } catch (const SystemError&) {
    return "x86_64";
  }
}

}  // namespace benchpark::archspec
