// Archspec: detecting, labeling, and reasoning about microarchitectures
// (Section 3.1.3 of the paper; Culpo et al., CANOPIE-HPC'20).
//
// Microarchitectures form a DAG ordered by feature compatibility: zen3 is
// compatible with anything zen2 runs, x86_64_v4 requires AVX-512, etc.
// Spack uses this to (1) tailor build recipes to the target and (2) pick
// compiler flags; both uses are reproduced here.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/spec/version.hpp"

namespace benchpark::archspec {

class Microarchitecture {
public:
  Microarchitecture(std::string name, std::vector<std::string> parents,
                    std::string vendor, std::set<std::string> features,
                    int generation = 0);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::string>& parents() const {
    return parents_;
  }
  [[nodiscard]] const std::string& vendor() const { return vendor_; }
  [[nodiscard]] const std::set<std::string>& features() const {
    return features_;
  }
  [[nodiscard]] int generation() const { return generation_; }
  [[nodiscard]] bool has_feature(std::string_view f) const {
    return features_.count(std::string(f)) > 0;
  }

private:
  std::string name_;
  std::vector<std::string> parents_;  // immediate ancestors in the DAG
  std::string vendor_;
  std::set<std::string> features_;    // cumulative ISA features
  int generation_ = 0;
};

/// The microarchitecture database (x86_64 generic levels, Intel line, AMD
/// zen line, IBM power line, ARM line).
class MicroarchDatabase {
public:
  /// The process-wide database.
  static const MicroarchDatabase& instance();

  [[nodiscard]] const Microarchitecture* find(std::string_view name) const;
  [[nodiscard]] const Microarchitecture& get(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// True iff code compiled for `target` runs on `host` (host >= target
  /// in the compatibility partial order; reflexive).
  [[nodiscard]] bool compatible(std::string_view host,
                                std::string_view target) const;

  /// All ancestors of `name` (transitive parents), nearest first.
  [[nodiscard]] std::vector<std::string> ancestors(
      std::string_view name) const;

  /// The generic family root ("x86_64", "ppc64le", "aarch64").
  [[nodiscard]] std::string family(std::string_view name) const;

private:
  MicroarchDatabase();
  void add(Microarchitecture march);

  std::map<std::string, Microarchitecture, std::less<>> entries_;
};

/// Compiler optimization flags for a (compiler, version, target) triple.
/// Throws SystemError for unknown targets; returns a generic flag set when
/// the compiler version predates full support for the target.
std::string optimization_flags(std::string_view compiler_name,
                               const spec::Version& compiler_version,
                               std::string_view target);

/// Kernel base parameters derived from a target's ISA features — the
/// HPCC_FPGA base-parameter-config idea: each target carries the tuning
/// knobs (vector width, FMA, blocking, batch depth) the kernel suite
/// instantiates with. Unknown targets fall back to conservative scalar
/// parameters instead of throwing, so detection failures stay runnable.
/// Keys: vector_doubles, fma, gemm_mr, gemm_nr, gemm_kc, fft_radix,
/// ra_batch.
std::map<std::string, std::string> kernel_base_parameters(
    std::string_view target);

/// Parse `/proc/cpuinfo`-style text into a microarchitecture name.
/// Used both for real host detection and for simulated system fixtures.
std::string detect_from_cpuinfo(std::string_view cpuinfo_text);

/// Detect the machine we are running on; falls back to the family root
/// when the exact microarchitecture is unknown.
std::string detect_host();

}  // namespace benchpark::archspec
