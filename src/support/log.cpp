#include "src/support/log.hpp"

#include <atomic>
#include <cstdio>

namespace benchpark::support {

namespace {

std::atomic<LogLevel> g_level{LogLevel::warn};
std::mutex g_sink_mutex;
std::function<void(LogLevel, std::string_view)> g_sink;  // guarded by mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level); }

LogLevel Log::level() { return g_level.load(); }

void Log::set_sink(std::function<void(LogLevel, std::string_view)> sink) {
  std::scoped_lock lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view msg) {
  if (level < g_level.load()) return;
  std::scoped_lock lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %.*s\n", level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace benchpark::support
