#include "src/support/fault.hpp"

#include <cstdio>
#include <cstdlib>

#include "src/support/error.hpp"
#include "src/support/hash.hpp"
#include "src/support/rng.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::support {

std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::none: return "none";
    case FaultKind::transient: return "transient";
    case FaultKind::permanent: return "permanent";
  }
  return "?";
}

namespace {

/// SplitMix64 finalizer: decorrelates the xor-combined decision inputs.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultPlan::FaultPlan(const FaultPlan& other) { *this = other; }

FaultPlan& FaultPlan::operator=(const FaultPlan& other) {
  if (this != &other) {
    std::scoped_lock lock(mu_, other.mu_);
    rules_ = other.rules_;
    seed_ = other.seed_;
    counters_ = other.counters_;
    armed_.store(!rules_.empty(), std::memory_order_relaxed);
  }
  return *this;
}

FaultPlan& FaultPlan::global() {
  static FaultPlan* plan = [] {
    auto* p = new FaultPlan();
    if (const char* env = std::getenv("BENCHPARK_FAULT_PLAN")) {
      *p = FaultPlan::parse(env);
    }
    return p;
  }();
  return *plan;
}

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (const auto& raw_clause : split(std::string(spec), ';')) {
    auto clause = trim(raw_clause);
    if (clause.empty()) continue;
    if (starts_with(clause, "seed=")) {
      try {
        plan.set_seed(static_cast<std::uint64_t>(
            parse_int(clause.substr(5))));
      } catch (const Error&) {
        throw Error("fault plan: bad seed in '" + clause + "'");
      }
      continue;
    }
    auto colon = clause.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw Error("fault plan: clause '" + clause +
                  "' is not 'seed=N' or '<site>:<params>'");
    }
    FaultRule rule;
    rule.site = trim(clause.substr(0, colon));
    bool kind_given = false;
    for (const auto& raw_param : split(clause.substr(colon + 1), ',')) {
      auto param = trim(raw_param);
      if (param.empty()) continue;
      auto [name, value] = split_first(param, '=');
      try {
        if (name == "nth") {
          rule.nth = static_cast<std::uint64_t>(parse_int(value));
          if (rule.nth == 0) throw Error("nth is 1-based");
        } else if (name == "count") {
          rule.count = static_cast<std::uint64_t>(parse_int(value));
          if (rule.count == 0) throw Error("count must be >= 1");
        } else if (name == "p") {
          rule.probability = parse_double(value);
          if (rule.probability < 0.0 || rule.probability > 1.0) {
            throw Error("p must be in [0, 1]");
          }
        } else if (name == "key") {
          rule.key = value;
        } else if (name == "latency") {
          rule.latency_seconds = parse_double(value);
          if (rule.latency_seconds < 0.0) {
            throw Error("latency must be >= 0");
          }
        } else if (name == "kind") {
          kind_given = true;
          if (value == "transient") rule.kind = FaultKind::transient;
          else if (value == "permanent") rule.kind = FaultKind::permanent;
          else if (value == "none") rule.kind = FaultKind::none;
          else throw Error("unknown kind '" + value + "'");
        } else {
          throw Error("unknown parameter '" + std::string(name) + "'");
        }
      } catch (const Error& e) {
        throw Error("fault plan: bad parameter '" + param + "' for site '" +
                    rule.site + "': " + e.what());
      }
    }
    // A clause with only latency is a pure delay; anything else defaults
    // to a transient failure.
    if (!kind_given && rule.latency_seconds > 0.0 && rule.nth == 0 &&
        rule.probability == 0.0) {
      rule.kind = FaultKind::none;
    }
    if (rule.kind == FaultKind::none && rule.latency_seconds == 0.0) {
      throw Error("fault plan: clause for site '" + rule.site +
                  "' has no effect (kind=none and no latency)");
    }
    plan.add_rule(std::move(rule));
  }
  return plan;
}

void FaultPlan::add_rule(FaultRule rule) {
  if (rule.site.empty()) throw Error("fault rule needs a site name");
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
  armed_.store(true, std::memory_order_relaxed);
}

void FaultPlan::set_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

std::uint64_t FaultPlan::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

void FaultPlan::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  counters_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultPlan::empty() const {
  return !armed_.load(std::memory_order_relaxed);
}

std::string FaultPlan::fingerprint(
    const std::vector<std::string>& site_prefixes) const {
  if (empty()) return "";
  std::lock_guard<std::mutex> lock(mu_);
  if (rules_.empty()) return "";
  auto selected = [&](const FaultRule& r) {
    if (site_prefixes.empty()) return true;
    for (const auto& prefix : site_prefixes) {
      if (r.site.compare(0, prefix.size(), prefix) == 0) return true;
    }
    return false;
  };
  bool any = false;
  for (const auto& r : rules_) any = any || selected(r);
  if (!any) return "";
  Hasher h;
  h.update("fault-plan-v1");
  h.update(seed_);
  for (const auto& r : rules_) {
    if (!selected(r)) continue;
    h.update(r.site);
    h.update(r.key);
    h.update(r.nth);
    h.update(r.count);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g/%.17g", r.probability,
                  r.latency_seconds);
    h.update(buf);
    h.update(fault_kind_name(r.kind));
  }
  return h.base32();
}

double FaultPlan::on_hit(std::string_view site, std::string_view key,
                         std::uint64_t attempt) {
  if (!armed_.load(std::memory_order_relaxed)) return 0.0;

  double latency = 0.0;
  FaultKind failure = FaultKind::none;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find(site);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(site), FaultSiteCounters{}).first;
    }
    FaultSiteCounters& c = it->second;
    ++c.hits;
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      const FaultRule& rule = rules_[r];
      if (rule.site != site) continue;
      if (!rule.key.empty() && rule.key != key) continue;
      bool triggered;
      if (rule.nth > 0) {
        triggered = attempt >= rule.nth && attempt < rule.nth + rule.count;
      } else if (rule.probability > 0.0) {
        // Pure function of (seed, site, key, attempt, rule): the schedule
        // is identical run-to-run no matter how threads interleave.
        std::uint64_t h = mix(seed_ ^ mix(fnv1a(site)) ^
                              mix(fnv1a(key) + 0x51ed270b0f0dULL) ^
                              mix(attempt * 0x2545f4914f6cdd1dULL + r));
        triggered = Rng(h).next_double() < rule.probability;
      } else {
        triggered = true;
      }
      if (!triggered) continue;
      latency += rule.latency_seconds;
      c.latency_seconds += rule.latency_seconds;
      if (rule.kind != FaultKind::none && failure == FaultKind::none) {
        failure = rule.kind;
        ++c.failures;
      }
      if (failure == FaultKind::permanent) break;
    }
  }
  if (failure != FaultKind::none) {
    std::string what = "injected " + std::string(fault_kind_name(failure)) +
                       " fault at '" + std::string(site) + "'";
    if (!key.empty()) what += " (key '" + std::string(key) + "')";
    what += ", attempt " + std::to_string(attempt);
    if (failure == FaultKind::permanent) throw PermanentError(what);
    throw TransientError(what);
  }
  return latency;
}

FaultSiteCounters FaultPlan::counters(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(site);
  return it == counters_.end() ? FaultSiteCounters{} : it->second;
}

std::uint64_t FaultPlan::total_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [site, c] : counters_) total += c.hits;
  return total;
}

std::uint64_t FaultPlan::total_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [site, c] : counters_) total += c.failures;
  return total;
}

double fault_hit(std::string_view site, std::string_view key,
                 std::uint64_t attempt) {
  return FaultPlan::global().on_hit(site, key, attempt);
}

}  // namespace benchpark::support
