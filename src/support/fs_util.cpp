#include "src/support/fs_util.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>

#include "src/support/error.hpp"

namespace benchpark::support {

namespace fs = std::filesystem;

void ensure_dir(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (!ec) return;
  // Concurrent Driver starts race each other through the same tree;
  // create_directories may surface EEXIST from a sibling's mkdir. As long
  // as the directory exists afterwards, creation succeeded.
  std::error_code exists_ec;
  if (fs::is_directory(dir, exists_ec)) return;
  throw Error("cannot create directory " + dir.string() + ": " +
              ec.message());
}

namespace {

/// Write + fsync + close a fully-buffered payload into `fd`. Returns an
/// errno-style message on failure (empty on success); always closes fd.
std::string write_all_and_sync(int fd, const std::string& content) {
  const char* p = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::string msg = std::strerror(errno);
      ::close(fd);
      return msg;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    std::string msg = std::strerror(errno);
    ::close(fd);
    return msg;
  }
  if (::close(fd) != 0) return std::strerror(errno);
  return {};
}

}  // namespace

void fsync_dir(const fs::path& dir) {
  // Best effort: persists the rename itself (the directory entry). Some
  // filesystems refuse O_RDONLY fsync on directories; that is not fatal.
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

void write_file(const fs::path& path, const std::string& content) {
  if (path.has_parent_path()) ensure_dir(path.parent_path());
  // Crash-safe publish: write a same-directory temp file, fsync it, then
  // rename over the target. A reader (or a process that crashes mid-write)
  // sees either the complete old bytes or the complete new bytes, never a
  // truncated mix — the property the on-disk store's compaction relies on.
  static std::atomic<unsigned> counter{0};
  fs::path tmp = path;
  tmp += ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    throw Error("cannot open for writing: " + tmp.string() + ": " +
                std::strerror(errno));
  }
  if (std::string err = write_all_and_sync(fd, content); !err.empty()) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw Error("write failed: " + path.string() + ": " + err);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw Error("cannot rename " + tmp.string() + " -> " + path.string() +
                ": " + ec.message());
  }
  if (path.has_parent_path()) fsync_dir(path.parent_path());
}

void append_file_sync(const fs::path& path, const std::string& content) {
  if (path.has_parent_path()) ensure_dir(path.parent_path());
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) {
    throw Error("cannot open for appending: " + path.string() + ": " +
                std::strerror(errno));
  }
  if (std::string err = write_all_and_sync(fd, content); !err.empty()) {
    throw Error("append failed: " + path.string() + ": " + err);
  }
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for reading: " + path.string());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

namespace {

void render_tree_rec(const fs::path& dir, const std::string& prefix,
                     std::string& out) {
  std::vector<fs::directory_entry> entries;
  for (const auto& e : fs::directory_iterator(dir)) entries.push_back(e);
  std::sort(entries.begin(), entries.end(),
            [](const fs::directory_entry& a, const fs::directory_entry& b) {
              if (a.is_directory() != b.is_directory())
                return a.is_directory();
              return a.path().filename() < b.path().filename();
            });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    bool last = (i + 1 == entries.size());
    const auto& e = entries[i];
    out += prefix;
    out += last ? "`-- " : "|-- ";
    out += e.path().filename().string();
    if (e.is_directory()) out += "/";
    out += "\n";
    if (e.is_directory()) {
      render_tree_rec(e.path(), prefix + (last ? "    " : "|   "), out);
    }
  }
}

}  // namespace

std::string render_tree(const fs::path& root) {
  if (!fs::exists(root)) throw Error("no such path: " + root.string());
  std::string out = root.filename().string() + "/\n";
  render_tree_rec(root, "", out);
  return out;
}

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<unsigned> counter{0};
  auto base = fs::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto candidate = base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                             std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec) {
      path_ = candidate;
      return;
    }
  }
  throw Error("cannot create temp dir under " + base.string());
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; destructor must not throw
}

}  // namespace benchpark::support
