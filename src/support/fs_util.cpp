#include "src/support/fs_util.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <fstream>

#include "src/support/error.hpp"

namespace benchpark::support {

namespace fs = std::filesystem;

void ensure_dir(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw Error("cannot create directory " + dir.string() + ": " +
                      ec.message());
}

void write_file(const fs::path& path, const std::string& content) {
  if (path.has_parent_path()) ensure_dir(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path.string());
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) throw Error("write failed: " + path.string());
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for reading: " + path.string());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

namespace {

void render_tree_rec(const fs::path& dir, const std::string& prefix,
                     std::string& out) {
  std::vector<fs::directory_entry> entries;
  for (const auto& e : fs::directory_iterator(dir)) entries.push_back(e);
  std::sort(entries.begin(), entries.end(),
            [](const fs::directory_entry& a, const fs::directory_entry& b) {
              if (a.is_directory() != b.is_directory())
                return a.is_directory();
              return a.path().filename() < b.path().filename();
            });
  for (std::size_t i = 0; i < entries.size(); ++i) {
    bool last = (i + 1 == entries.size());
    const auto& e = entries[i];
    out += prefix;
    out += last ? "`-- " : "|-- ";
    out += e.path().filename().string();
    if (e.is_directory()) out += "/";
    out += "\n";
    if (e.is_directory()) {
      render_tree_rec(e.path(), prefix + (last ? "    " : "|   "), out);
    }
  }
}

}  // namespace

std::string render_tree(const fs::path& root) {
  if (!fs::exists(root)) throw Error("no such path: " + root.string());
  std::string out = root.filename().string() + "/\n";
  render_tree_rec(root, "", out);
  return out;
}

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<unsigned> counter{0};
  auto base = fs::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto candidate = base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                             std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec) {
      path_ = candidate;
      return;
    }
  }
  throw Error("cannot create temp dir under " + base.string());
}

TempDir::~TempDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // best effort; destructor must not throw
}

}  // namespace benchpark::support
