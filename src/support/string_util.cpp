#include "src/support/string_util.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/support/error.hpp"

namespace benchpark::support {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::pair<std::string, std::string> split_first(std::string_view s, char sep) {
  std::size_t pos = s.find(sep);
  if (pos == std::string_view::npos) return {std::string(s), ""};
  return {std::string(s.substr(0, pos)), std::string(s.substr(pos + 1))};
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::string repeat(std::string_view s, std::size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (std::size_t i = 0; i < n; ++i) out += s;
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.insert(out.begin(), width - out.size(), ' ');
  return out;
}

std::string format_double(double v, int max_precision) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", max_precision, v);
  return buf;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '-';
  });
}

long long parse_int(std::string_view s) {
  long long value = 0;
  auto trimmed = trim(s);
  auto [ptr, ec] = std::from_chars(trimmed.data(),
                                   trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    throw Error("not an integer: '" + std::string(s) + "'");
  }
  return value;
}

double parse_double(std::string_view s) {
  auto trimmed = trim(s);
  // std::from_chars<double> is available with GCC 12; use it for full parse.
  double value = 0;
  auto [ptr, ec] = std::from_chars(trimmed.data(),
                                   trimmed.data() + trimmed.size(), value);
  if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
    throw Error("not a number: '" + std::string(s) + "'");
  }
  return value;
}

bool looks_like_int(std::string_view s) {
  auto trimmed = trim(s);
  if (trimmed.empty()) return false;
  long long value = 0;
  auto [ptr, ec] = std::from_chars(trimmed.data(),
                                   trimmed.data() + trimmed.size(), value);
  return ec == std::errc{} && ptr == trimmed.data() + trimmed.size();
}

bool looks_like_double(std::string_view s) {
  auto trimmed = trim(s);
  if (trimmed.empty()) return false;
  double value = 0;
  auto [ptr, ec] = std::from_chars(trimmed.data(),
                                   trimmed.data() + trimmed.size(), value);
  return ec == std::errc{} && ptr == trimmed.data() + trimmed.size();
}

}  // namespace benchpark::support
