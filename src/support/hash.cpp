#include "src/support/hash.hpp"

#include <array>

namespace benchpark::support {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

Hasher& Hasher::update(std::string_view data) {
  for (unsigned char c : data) {
    state_ ^= c;
    state_ *= kFnvPrime;
  }
  // Separator byte so update("ab").update("c") != update("a").update("bc").
  state_ ^= 0xff;
  state_ *= kFnvPrime;
  return *this;
}

Hasher& Hasher::update(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    state_ ^= (v >> (i * 8)) & 0xff;
    state_ *= kFnvPrime;
  }
  return *this;
}

std::string Hasher::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t v = state_;
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string Hasher::base32() const {
  // Spack uses lowercase RFC 4648 base32; 64 bits -> 13 digits.
  static constexpr char kDigits[] = "abcdefghijklmnopqrstuvwxyz234567";
  std::string out;
  out.reserve(13);
  std::uint64_t v = state_;
  for (int i = 0; i < 13; ++i) {
    out.push_back(kDigits[v & 0x1f]);
    v >>= 5;
  }
  return out;
}

std::uint64_t fnv1a(std::string_view data) {
  return Hasher{}.update(data).digest();
}

std::string hash_base32(std::string_view data) {
  return Hasher{}.update(data).base32();
}

}  // namespace benchpark::support
