// Minimal leveled logger.
//
// Components log through a process-global sink; tests can capture it.
// Default level is `warn` so library use is quiet; examples raise it.
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace benchpark::support {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Process-global logging configuration. Thread-safe.
class Log {
public:
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Redirect output (default writes to stderr). Pass nullptr to restore.
  static void set_sink(std::function<void(LogLevel, std::string_view)> sink);

  static void debug(std::string_view msg) { write(LogLevel::debug, msg); }
  static void info(std::string_view msg) { write(LogLevel::info, msg); }
  static void warn(std::string_view msg) { write(LogLevel::warn, msg); }
  static void error(std::string_view msg) { write(LogLevel::error, msg); }

private:
  static void write(LogLevel level, std::string_view msg);
};

/// RAII scope that raises/lowers the log level and restores it on exit.
class ScopedLogLevel {
public:
  explicit ScopedLogLevel(LogLevel level) : previous_(Log::level()) {
    Log::set_level(level);
  }
  ~ScopedLogLevel() { Log::set_level(previous_); }

  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

private:
  LogLevel previous_;
};

}  // namespace benchpark::support
