#include "src/support/intern.hpp"

#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/support/snapshot.hpp"

namespace benchpark::support {

namespace {

/// One immutable published generation of the id table. The string_view
/// keys and the by-id pointers both reference strings owned by the
/// append-only `storage` deque in Impl, so copying a Table copies only
/// views, never bytes.
struct Table {
  std::unordered_map<std::string_view, std::uint32_t> by_text;
  std::vector<const std::string*> by_id;  // index == id; [0] is nullptr
};

}  // namespace

struct Interner::Impl {
  SnapshotPtr<Table> snapshot;
  std::mutex write_mu;
  /// Append-only backing store; deque growth never moves existing
  /// elements, so published views stay valid forever.
  std::deque<std::string> storage;
};

Interner::Interner() : impl_(new Impl) {
  auto initial = std::make_shared<Table>();
  initial->by_id.push_back(nullptr);  // id 0: empty / not interned
  impl_->snapshot.store(std::move(initial));
}

Interner& Interner::global() {
  // Leaked on purpose: interned ids may be consulted from static
  // destructors (cache teardown), so the table must outlive everything.
  static Interner* instance = new Interner();
  return *instance;
}

std::uint32_t Interner::intern(std::string_view text) {
  if (text.empty()) return 0;
  {
    auto table = impl_->snapshot.load();
    auto it = table->by_text.find(text);
    if (it != table->by_text.end()) return it->second;
  }
  std::lock_guard<std::mutex> lock(impl_->write_mu);
  // Re-check: another writer may have interned it while we waited.
  auto current = impl_->snapshot.load();
  auto it = current->by_text.find(text);
  if (it != current->by_text.end()) return it->second;

  impl_->storage.emplace_back(text);
  const std::string& stored = impl_->storage.back();
  auto next = std::make_shared<Table>(*current);
  const auto id = static_cast<std::uint32_t>(next->by_id.size());
  next->by_id.push_back(&stored);
  next->by_text.emplace(std::string_view(stored), id);
  impl_->snapshot.store(std::move(next));
  return id;
}

std::uint32_t Interner::lookup(std::string_view text) const {
  if (text.empty()) return 0;
  auto table = impl_->snapshot.load();
  auto it = table->by_text.find(text);
  return it == table->by_text.end() ? 0 : it->second;
}

std::string_view Interner::view(std::uint32_t id) const {
  if (id == 0) return {};
  auto table = impl_->snapshot.load();
  if (id >= table->by_id.size()) return {};
  return *table->by_id[id];
}

std::size_t Interner::size() const {
  return impl_->snapshot.load()->by_id.size() - 1;
}

}  // namespace benchpark::support
