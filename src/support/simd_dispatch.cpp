#include "src/support/simd_dispatch.hpp"

#include <cstdlib>

namespace benchpark::support {

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::scalar:
      return "scalar";
    case SimdLevel::sse2:
      return "sse2";
    case SimdLevel::neon:
      return "neon";
    case SimdLevel::avx2:
      return "avx2";
    case SimdLevel::avx512:
      return "avx512";
  }
  return "scalar";
}

SimdLevel compiled_simd_level() {
#if defined(__AVX512F__)
  return SimdLevel::avx512;
#elif defined(__AVX2__)
  return SimdLevel::avx2;
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
  return SimdLevel::sse2;
#elif defined(__ARM_NEON) || defined(__aarch64__)
  return SimdLevel::neon;
#else
  return SimdLevel::scalar;
#endif
}

SimdLevel detect_simd_level() {
  if (std::getenv("BENCHPARK_FORCE_SCALAR") != nullptr) {
    return SimdLevel::scalar;
  }
  return compiled_simd_level();
}

SimdLevel active_simd_level() {
  static const SimdLevel level = detect_simd_level();
  return level;
}

bool simd_active() { return active_simd_level() != SimdLevel::scalar; }

}  // namespace benchpark::support
