// Runtime SIMD-width dispatch: pick the kernel flavor once at startup.
//
// The BENCHPARK_SIMD kernels (src/support/simd.hpp) are compiled for
// whatever ISA the compiler targets; their `_scalar` twins are compiled
// with vectorization disabled. This helper selects between the two
// exactly once — the first call resolves the active level (compile-time
// best ISA, demoted to `scalar` when BENCHPARK_FORCE_SCALAR is set in the
// environment) and caches it, so hot loops bind a plain function pointer
// instead of re-branching per call:
//
//   static const auto kernel =
//       support::select_kernel(&saxpy_kernel, &saxpy_kernel_scalar);
//   kernel(r, x, y, n, a);   // no dispatch overhead in the loop
//
// The split between detect_simd_level() (uncached, re-reads the
// environment) and active_simd_level() (cached) exists for tests:
// production code always wants the cached value, tests want to observe
// the effect of the environment variable without process-global state.
#pragma once

namespace benchpark::support {

/// Instruction-set tiers the dispatcher distinguishes, widest last.
enum class SimdLevel { scalar, sse2, neon, avx2, avx512 };

/// Human-readable name ("scalar", "sse2", ...), for logs and tests.
[[nodiscard]] const char* simd_level_name(SimdLevel level);

/// Best ISA this binary was compiled for, from predefined macros.
/// x86-64 implies at least SSE2; AVX2/AVX-512 only under -march flags.
[[nodiscard]] SimdLevel compiled_simd_level();

/// Uncached resolution: compiled_simd_level(), demoted to scalar when
/// BENCHPARK_FORCE_SCALAR is set (to anything) in the environment.
[[nodiscard]] SimdLevel detect_simd_level();

/// Cached resolution — detect_simd_level() evaluated once, at the first
/// call, then pinned for the life of the process.
[[nodiscard]] SimdLevel active_simd_level();

/// True when the active level is anything above scalar.
[[nodiscard]] bool simd_active();

/// Bind the vectorized or scalar flavor according to the active level.
/// Store the result in a `static const` at the call site so selection
/// happens once and the hot loop calls through an unconditioned pointer.
template <typename Fn>
[[nodiscard]] Fn select_kernel(Fn vectorized, Fn scalar) {
  return simd_active() ? vectorized : scalar;
}

}  // namespace benchpark::support
