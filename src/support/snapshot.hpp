// RCU-style atomic snapshot publication with hazard-pointer reclamation.
//
// The sharded caches (buildcache::BinaryCache,
// concretizer::ConcretizationCache, ramble::TemplateCache) and the string
// interner serve their steady-state read paths from an immutable snapshot.
// Readers pin the current snapshot through a per-thread hazard slot: one
// plain load, one store to the thread's own slot, one validating load —
// no lock, no shared reference count, no read-side cache-line contention
// (an atomic<shared_ptr> snapshot was measurably *slower* than a mutex at
// 16 threads: libstdc++ backs it with a spinlock pool and every reader
// bumps the same control-block refcount). Writers copy the current
// snapshot under the shard's existing mutex, apply the mutation to the
// copy, publish the new version, and retire the old one; a retired
// snapshot is freed on a later publish once no thread's hazard slot pins
// it (the grace period of classic RCU, detected instead of waited for).
//
// Protocol invariants (DESIGN.md §12):
//   * a snapshot, once published, is never mutated;
//   * writers serialize per SnapshotPtr on the owner's mutex, so
//     copy-modify-publish sequences never interleave and the retired list
//     needs no locking of its own;
//   * load() is lock-free and returns a fully consistent snapshot — a
//     reader sees either the whole effect of a publish or none of it,
//     never a torn state;
//   * a SnapshotGuard must stay on the thread that created it and die
//     within the request scope (never stash one); nesting deeper than
//     hazard::Record::kSlots guards on one thread throws;
//   * destroying a SnapshotPtr requires that no readers remain.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace benchpark::support {

namespace hazard {

/// One thread's hazard slots. Records live on a global intrusive list,
/// are claimed on a thread's first pin, released at thread exit, and
/// recycled by later threads — never freed, so writers can always scan.
struct Record {
  static constexpr int kSlots = 8;
  std::atomic<const void*> slots[kSlots];
  std::atomic<bool> owned{false};
  Record* next = nullptr;  // immutable once linked in

  Record() {
    for (auto& s : slots) s.store(nullptr, std::memory_order_relaxed);
  }
};

/// A free slot in the calling thread's record (registering the thread on
/// first use). Throws std::runtime_error when all kSlots are pinned
/// (guard nesting too deep). The slot stays "claimed" exactly while it
/// holds a non-null pointer.
std::atomic<const void*>* claim_slot();

/// True when any thread's slot currently pins `p` (seq_cst scan; pairs
/// with the guard's seq_cst pin-validate protocol).
bool any_hazard(const void* p);

}  // namespace hazard

/// Pins one published snapshot for the guard's scope. Obtained from
/// SnapshotPtr::load(); behaves like a non-owning smart pointer whose
/// target is guaranteed alive until the guard dies.
template <typename T>
class SnapshotGuard {
public:
  explicit SnapshotGuard(const std::atomic<const T*>& src)
      : slot_(hazard::claim_slot()) {
    // Pin-validate loop: publish the candidate in our hazard slot, then
    // re-read the source. Once both agree the writer's sweep is
    // guaranteed to see the pin (both sides seq_cst), so the snapshot
    // cannot be freed while we hold it.
    const T* candidate = src.load(std::memory_order_acquire);
    for (;;) {
      slot_->store(candidate, std::memory_order_seq_cst);
      const T* again = src.load(std::memory_order_seq_cst);
      if (again == candidate) break;
      candidate = again;
    }
    ptr_ = candidate;
  }

  ~SnapshotGuard() { slot_->store(nullptr, std::memory_order_release); }

  SnapshotGuard(const SnapshotGuard&) = delete;
  SnapshotGuard& operator=(const SnapshotGuard&) = delete;

  [[nodiscard]] const T* get() const { return ptr_; }
  [[nodiscard]] const T& operator*() const { return *ptr_; }
  [[nodiscard]] const T* operator->() const { return ptr_; }

private:
  std::atomic<const void*>* slot_;
  const T* ptr_ = nullptr;
};

/// A published, immutable snapshot slot. T is the snapshot payload (a
/// whole shard map); the stored pointer is always non-null after
/// construction so readers never branch on empty.
template <typename T>
class SnapshotPtr {
public:
  SnapshotPtr() : current_(std::make_shared<const T>()) {
    raw_.store(current_.get(), std::memory_order_relaxed);
  }
  explicit SnapshotPtr(std::shared_ptr<const T> initial)
      : current_(std::move(initial)) {
    raw_.store(current_.get(), std::memory_order_relaxed);
  }

  SnapshotPtr(const SnapshotPtr&) = delete;
  SnapshotPtr& operator=(const SnapshotPtr&) = delete;

  /// Lock-free read: pin the current snapshot for the guard's scope.
  [[nodiscard]] SnapshotGuard<T> load() const { return SnapshotGuard<T>(raw_); }

  /// Publish a new snapshot (writers only, under the owning mutex). The
  /// superseded snapshot is retired and freed on a later store() once no
  /// reader pins it.
  void store(std::shared_ptr<const T> next) {
    retired_.push_back(std::move(current_));
    current_ = std::move(next);
    raw_.store(current_.get(), std::memory_order_seq_cst);
    // Sweep: a retired snapshot some slot still pins survives to the
    // next publish; everything unpinned is freed now. Readers racing
    // their pin against this publish either validate against the new
    // pointer (retrying) or were already visible to any_hazard.
    std::size_t kept = 0;
    for (auto& old : retired_) {
      if (hazard::any_hazard(old.get())) {
        retired_[kept++] = std::move(old);
      }
    }
    retired_.resize(kept);
  }

private:
  std::shared_ptr<const T> current_;
  std::atomic<const T*> raw_{nullptr};
  /// Superseded snapshots still (possibly) pinned by readers. Guarded by
  /// the writer-side serialization contract, not a mutex of its own.
  std::vector<std::shared_ptr<const T>> retired_;
};

}  // namespace benchpark::support
