// Persistent process-wide work-sharing thread pool.
//
// The original support::parallel_for constructed and joined raw
// std::threads on every call — per Jacobi sweep, per residual norm. This
// pool is created lazily on first use, parks its workers on a condition
// variable between calls, and executes the chunked index-range batches
// submitted by the parallel_for / parallel_reduce front-ends in
// src/support/parallel.hpp and by the wavefront install engine.
//
// Concurrency contract:
//  - run_batch() may be called from any thread; the caller executes the
//    final chunk itself and blocks until the whole batch has drained.
//  - Nested calls from inside a pool worker run inline (fork-join without
//    oversubscription; a blocking worker can never starve the queue).
//  - The first exception thrown by any chunk is captured and rethrown on
//    the calling thread once the batch completes.
//  - Workers are spawned on demand up to the largest parallelism ever
//    requested and then reused; workers_spawned() is monotonic and stays
//    flat across repeated hot-path calls.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace benchpark::support {

class ThreadPool {
public:
  /// The process-wide pool. Constructed lazily; workers spawn on demand.
  static ThreadPool& global();

  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execute chunk_fn(0) .. chunk_fn(chunks - 1) across the pool. The
  /// calling thread takes the last chunk; returns once every chunk has
  /// finished, rethrowing the first chunk exception (if any).
  void run_batch(std::size_t chunks,
                 const std::function<void(std::size_t)>& chunk_fn);

  /// Number of live workers.
  [[nodiscard]] std::size_t workers() const;
  /// Total workers ever spawned (monotonic). Hot loops that reuse the
  /// pool keep this constant — asserted by the thread-pool stress tests.
  [[nodiscard]] std::uint64_t workers_spawned() const;

  /// True when called from inside one of this process's pool workers.
  [[nodiscard]] static bool on_worker_thread();

  /// Default engine-side parallelism: BENCHPARK_NUM_THREADS when set to a
  /// positive integer, otherwise std::thread::hardware_concurrency().
  [[nodiscard]] static int default_threads();

private:
  void ensure_workers_locked(std::size_t wanted);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::uint64_t spawned_ = 0;
  bool stopping_ = false;
};

}  // namespace benchpark::support
