#include "src/support/snapshot.hpp"

#include <stdexcept>

namespace benchpark::support::hazard {

namespace {

/// Head of the global record list. Records are pushed once and never
/// removed, so writers can scan without synchronizing with registration
/// beyond the acquire load of the head.
std::atomic<Record*> g_head{nullptr};

Record* acquire_record() {
  // Recycle a record an exited thread released before allocating.
  for (Record* r = g_head.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    bool expected = false;
    if (!r->owned.load(std::memory_order_relaxed) &&
        r->owned.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      return r;
    }
  }
  auto* fresh = new Record();
  fresh->owned.store(true, std::memory_order_relaxed);
  Record* head = g_head.load(std::memory_order_relaxed);
  do {
    fresh->next = head;
  } while (!g_head.compare_exchange_weak(head, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed));
  return fresh;
}

void release_record(Record* r) {
  for (auto& s : r->slots) s.store(nullptr, std::memory_order_relaxed);
  r->owned.store(false, std::memory_order_release);
}

/// Thread registration: claims a record lazily on the first pin and
/// returns it to the recycle pool at thread exit.
struct ThreadRecord {
  Record* record = nullptr;
  ~ThreadRecord() {
    if (record != nullptr) release_record(record);
  }
};

thread_local ThreadRecord t_record;

}  // namespace

std::atomic<const void*>* claim_slot() {
  if (t_record.record == nullptr) t_record.record = acquire_record();
  for (auto& s : t_record.record->slots) {
    // Only this thread stores non-null into its own slots, so a relaxed
    // null check is an exact "free" test.
    if (s.load(std::memory_order_relaxed) == nullptr) return &s;
  }
  throw std::runtime_error(
      "SnapshotGuard nesting exceeds hazard::Record::kSlots on one thread");
}

bool any_hazard(const void* p) {
  for (Record* r = g_head.load(std::memory_order_acquire); r != nullptr;
       r = r->next) {
    for (const auto& s : r->slots) {
      if (s.load(std::memory_order_seq_cst) == p) return true;
    }
  }
  return false;
}

}  // namespace benchpark::support::hazard
