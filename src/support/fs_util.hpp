// Filesystem helpers for generated workspaces.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace benchpark::support {

/// Create `dir` (and parents). Throws benchpark::Error on failure.
void ensure_dir(const std::filesystem::path& dir);

/// Write `content` to `path`, creating parent directories.
void write_file(const std::filesystem::path& path, const std::string& content);

/// Read the full file; throws benchpark::Error if unreadable.
std::string read_file(const std::filesystem::path& path);

/// Render a `tree`-style listing of `root` (sorted, dirs first), used to
/// reproduce the Figure 1a directory-structure view.
std::string render_tree(const std::filesystem::path& root);

/// RAII temporary directory under the system temp dir, removed on scope
/// exit. Used by workspace tests.
class TempDir {
public:
  explicit TempDir(const std::string& prefix = "benchpark");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

private:
  std::filesystem::path path_;
};

}  // namespace benchpark::support
