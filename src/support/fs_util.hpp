// Filesystem helpers for generated workspaces.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace benchpark::support {

/// Create `dir` (and parents). Race-safe under concurrent creators: as
/// long as the directory exists afterwards the call succeeds. Throws
/// benchpark::Error on failure.
void ensure_dir(const std::filesystem::path& dir);

/// Write `content` to `path`, creating parent directories. Crash-safe:
/// writes a same-directory temp file, fsyncs it, and atomically renames it
/// over `path`, so readers never observe a torn or truncated file.
void write_file(const std::filesystem::path& path, const std::string& content);

/// Append `content` to `path` (creating it if needed) and fsync before
/// returning. Used for the store's journal records.
void append_file_sync(const std::filesystem::path& path,
                      const std::string& content);

/// Best-effort fsync of a directory so a just-renamed entry survives a
/// crash. Silently no-ops where directory fsync is unsupported.
void fsync_dir(const std::filesystem::path& dir);

/// Read the full file; throws benchpark::Error if unreadable.
std::string read_file(const std::filesystem::path& path);

/// Render a `tree`-style listing of `root` (sorted, dirs first), used to
/// reproduce the Figure 1a directory-structure view.
std::string render_tree(const std::filesystem::path& root);

/// RAII temporary directory under the system temp dir, removed on scope
/// exit. Used by workspace tests.
class TempDir {
public:
  explicit TempDir(const std::string& prefix = "benchpark");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

private:
  std::filesystem::path path_;
};

}  // namespace benchpark::support
