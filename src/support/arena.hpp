// Bump-pointer arena allocation for per-request scratch.
//
// Template expansion and concretization used to pay one or more heap
// allocations per call for memo tables, value buffers, and closure sets
// that all die together when the request finishes. An Arena turns that
// into pointer bumps inside reusable blocks: allocate() carves aligned
// slices off the current block, reset() rewinds every block for the next
// request without returning memory to the heap, so a warmed-up arena
// serves an unbounded stream of requests with zero heap traffic — the
// property the counting-allocator test in tests/test_hotpath.cpp pins
// down for CompiledTemplate::expand.
//
// Lifetime rules (DESIGN.md §12):
//   * an Arena is single-threaded — one request/worker owns it; parallel
//     engines keep one arena per worker, never share;
//   * memory from allocate() lives until the next reset() (or arena
//     destruction), never longer — callers must not let arena-backed
//     views escape the request;
//   * reset() keeps the high-water blocks, so steady state allocates
//     nothing; shrinking requires destroying the arena.
//
// Oversized requests (larger than the next block would be) get their own
// dedicated block — the large-allocation fallback — so allocate() never
// fails for size reasons; such blocks are reused on later passes like any
// other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace benchpark::support {

class Arena {
public:
  static constexpr std::size_t kDefaultFirstBlockBytes = 4096;

  explicit Arena(std::size_t first_block_bytes = kDefaultFirstBlockBytes)
      : next_block_bytes_(first_block_bytes < 64 ? 64 : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned bump allocation. Never returns nullptr; grows by adding
  /// blocks (geometric, or exactly-sized for oversized requests).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    while (current_ < blocks_.size()) {
      Block& b = blocks_[current_];
      // Align the absolute address, not the offset: new[] blocks are only
      // guaranteed max_align_t alignment, stricter callers need padding.
      auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      std::size_t aligned =
          (((base + b.used) + align - 1) & ~(align - 1)) - base;
      if (aligned + bytes <= b.size) {
        b.used = aligned + bytes;
        return b.data.get() + aligned;
      }
      ++current_;  // move on; the block keeps its bytes until reset()
    }
    return allocate_slow(bytes, align);
  }

  /// Typed helper: uninitialized storage for `count` Ts.
  template <typename T>
  T* allocate_array(std::size_t count) {
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewind every block for reuse. O(block count); frees nothing.
  void reset() {
    for (Block& b : blocks_) b.used = 0;
    current_ = 0;
  }

  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  /// Total bytes owned (capacity, not live usage).
  [[nodiscard]] std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  /// Bytes handed out since the last reset (including alignment padding).
  [[nodiscard]] std::size_t used_bytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.used;
    return total;
  }

private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void* allocate_slow(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;       // first block worth trying
  std::size_t next_block_bytes_;  // geometric growth schedule
};

/// Growable contiguous vector of trivially-destructible Ts backed by an
/// arena. Growth copies into a fresh arena slice (the old slice is wasted
/// until reset — bump allocators cannot free), which is the right trade
/// for request-scoped scratch that grows a handful of times.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_destructible_v<T>,
                "arena memory is reclaimed without running destructors");
  static_assert(std::is_trivially_copyable_v<T>,
                "growth relocates elements with memcpy");

public:
  explicit ArenaVector(Arena& arena) : arena_(&arena) {}

  void push_back(const T& value) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = value;
  }

  [[nodiscard]] T* begin() { return data_; }
  [[nodiscard]] T* end() { return data_ + size_; }
  [[nodiscard]] const T* begin() const { return data_; }
  [[nodiscard]] const T* end() const { return data_ + size_; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }  // keeps the current slice

  [[nodiscard]] bool contains(const T& value) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (data_[i] == value) return true;
    }
    return false;
  }

private:
  void grow(std::size_t need) {
    std::size_t next = capacity_ == 0 ? 8 : capacity_ * 2;
    if (next < need) next = need;
    T* fresh = arena_->allocate_array<T>(next);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    capacity_ = next;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Growable char buffer in an arena: the expansion engine's value
/// scratch. Mirrors the std::string append surface the expander needs.
class ArenaString {
public:
  explicit ArenaString(Arena& arena) : arena_(&arena) {}

  void append(std::string_view s) {
    if (size_ + s.size() > capacity_) grow(size_ + s.size());
    std::memcpy(data_ + size_, s.data(), s.size());
    size_ += s.size();
  }
  void push_back(char c) {
    if (size_ + 1 > capacity_) grow(size_ + 1);
    data_[size_++] = c;
  }
  void operator+=(std::string_view s) { append(s); }
  void operator+=(const std::string& s) { append(std::string_view(s)); }

  void clear() { size_ = 0; }
  [[nodiscard]] std::string_view view() const { return {data_, size_}; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

private:
  void grow(std::size_t need) {
    std::size_t next = capacity_ == 0 ? 32 : capacity_ * 2;
    if (next < need) next = need;
    char* fresh = arena_->allocate_array<char>(next);
    if (size_ > 0) std::memcpy(fresh, data_, size_);
    data_ = fresh;
    capacity_ = next;
  }

  Arena* arena_;
  char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace benchpark::support
