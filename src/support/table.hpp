// ASCII table rendering for reports, dashboards, and the Table-1 bench.
#pragma once

#include <string>
#include <vector>

namespace benchpark::support {

/// Builds monospace tables:
///
///   +--------+------+
///   | name   | time |
///   +--------+------+
///   | saxpy  | 1.2  |
///   +--------+------+
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; short rows are padded with empty cells, long rows throw.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header_.size(); }

  /// Render with box-drawing (+---+) borders.
  [[nodiscard]] std::string render() const;

  /// Render as GitHub-flavored markdown.
  [[nodiscard]] std::string render_markdown() const;

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace benchpark::support
