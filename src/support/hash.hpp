// Stable content hashing.
//
// Spack identifies concrete specs by a DAG hash; we reproduce that with a
// 64-bit FNV-1a hash rendered base32 (Spack-style lowercase hash prefix).
// The hash must be stable across runs and platforms, so no std::hash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace benchpark::support {

/// Incremental FNV-1a 64-bit hasher.
class Hasher {
public:
  Hasher& update(std::string_view data);
  Hasher& update(std::uint64_t v);

  [[nodiscard]] std::uint64_t digest() const { return state_; }

  /// Spack-style lowercase base32 rendering (13 chars for 64 bits).
  [[nodiscard]] std::string hex() const;
  [[nodiscard]] std::string base32() const;

private:
  std::uint64_t state_ = 0xcbf29ce484222325ULL;
};

/// One-shot helpers.
std::uint64_t fnv1a(std::string_view data);
std::string hash_base32(std::string_view data);

/// Transparent hasher for unordered string-keyed maps: enables
/// find(string_view) without materializing a temporary std::string on
/// lookup paths (std::hash here, not fnv1a — these hashes never persist).
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace benchpark::support
