// Portable SIMD annotations for the benchmark inner loops.
//
// The kernels vectorize with `#pragma omp simd`, compiled under
// -fopenmp-simd — the pragma-only subset of OpenMP: the compiler honors
// the vectorization directives but links no OpenMP runtime and spawns no
// threads (threading stays on support::parallel_for). On compilers
// without the pragma the macro expands to nothing and the loops compile
// scalar, so correctness never depends on vectorization.
//
// Every vectorized kernel keeps a scalar reference twin (built with
// BENCHPARK_NO_VECTORIZE so the optimizer cannot quietly vectorize it
// too); the parity tests in tests/test_benchmarks.cpp compare the two —
// elementwise kernels must match bitwise, reduction kernels (which
// reassociate sums across lanes) to a relative tolerance.
#pragma once

#if defined(__GNUC__) || defined(__clang__) || defined(_OPENMP)
#define BENCHPARK_SIMD _Pragma("omp simd")
#else
#define BENCHPARK_SIMD
#endif

#if defined(__GNUC__) && !defined(__clang__)
#define BENCHPARK_NO_VECTORIZE __attribute__((optimize("no-tree-vectorize")))
#elif defined(__clang__)
#define BENCHPARK_NO_VECTORIZE [[clang::noinline]]
#else
#define BENCHPARK_NO_VECTORIZE
#endif
