#include "src/support/arena.hpp"

#include <cstdint>

namespace benchpark::support {

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // No existing block fits. Oversized requests (bigger than the next
  // scheduled block) get an exactly-sized dedicated block so one huge
  // allocation doesn't balloon the growth schedule; normal requests get
  // the next geometric block. `align - 1` headroom guarantees the aligned
  // start still fits in either case (block starts are new[]-aligned to
  // max_align_t, but a stricter caller alignment could need padding).
  std::size_t block_bytes = next_block_bytes_;
  if (bytes + align - 1 > block_bytes) {
    block_bytes = bytes + align - 1;
  } else {
    next_block_bytes_ *= 2;
  }
  Block block;
  block.data = std::make_unique<char[]>(block_bytes);
  block.size = block_bytes;
  auto addr = reinterpret_cast<std::uintptr_t>(block.data.get());
  std::size_t aligned_offset = ((addr + align - 1) & ~(align - 1)) - addr;
  block.used = aligned_offset + bytes;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  return blocks_.back().data.get() + aligned_offset;
}

}  // namespace benchpark::support
