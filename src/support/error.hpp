// Error hierarchy shared by all benchpark modules.
//
// Every subsystem throws a subclass of benchpark::Error so callers can
// catch per-domain (e.g. SpecError from the spec parser) or catch the
// whole family at tool boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace benchpark {

/// Root of the benchpark exception hierarchy.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A failure that is expected to succeed if the operation is retried: a
/// mirror blip, a flaky build step, a preempted job. Retry loops
/// (installer packages, CI jobs, cache fetches) catch exactly this type;
/// anything else is treated as permanent.
class TransientError : public Error {
public:
  using Error::Error;
};

/// A failure that retrying will not fix: retries exhausted, a corrupt
/// artifact, a dependency whose owning install already failed.
class PermanentError : public Error {
public:
  using Error::Error;
};

/// Malformed spec syntax or unsatisfiable spec constraint.
class SpecError : public Error {
public:
  using Error::Error;
};

/// YAML subset parse failure (carries line information in the message).
class YamlError : public Error {
public:
  using Error::Error;
};

/// Unknown package, version, or variant in a package repository.
class PackageError : public Error {
public:
  using Error::Error;
};

/// Concretization failure: conflicting constraints, no provider, etc.
/// The specific failure classes below refine this root so callers can
/// catch per-cause (mirroring SchedulerError / the installer's
/// Transient/Permanent split); catching ConcretizationError still catches
/// them all. Messages name the conflicting constraints.
class ConcretizationError : public Error {
public:
  using Error::Error;
};

/// No known version of the package satisfies the requested constraint.
class UnsatisfiableVersionError : public ConcretizationError {
public:
  using ConcretizationError::ConcretizationError;
};

/// A virtual package has no usable provider (none declared, or every
/// provider is unbuildable with no external).
class NoProviderError : public ConcretizationError {
public:
  using ConcretizationError::ConcretizationError;
};

/// unify:true resolved a package twice with incompatible constraints.
class UnifyConflictError : public ConcretizationError {
public:
  using ConcretizationError::ConcretizationError;
};

/// The dependency closure loops back on itself.
class DependencyCycleError : public ConcretizationError {
public:
  using ConcretizationError::ConcretizationError;
};

/// Experiment / workspace configuration problems (ramble layer).
class ExperimentError : public Error {
public:
  using Error::Error;
};

/// Scheduler rejections: bad script, impossible resource request.
class SchedulerError : public Error {
public:
  using Error::Error;
};

/// CI layer failures: unknown repo, security policy violations.
class CiError : public Error {
public:
  using Error::Error;
};

/// System registry failures: unknown system, bad hardware description.
class SystemError : public Error {
public:
  using Error::Error;
};

/// Historical-analytics failures (analysis layer). The refinements below
/// mirror the ConcretizationError taxonomy: callers can catch per-cause
/// (not enough history to judge, a bisection that cannot converge) or
/// catch AnalysisError for the whole family.
class AnalysisError : public Error {
public:
  using Error::Error;
};

/// A series does not yet have enough baseline samples to classify its
/// latest point; carries how many it has and how many the detector needs.
class InsufficientHistoryError : public AnalysisError {
public:
  InsufficientHistoryError(const std::string& what, std::size_t have_,
                           std::size_t need_)
      : AnalysisError(what), have(have_), need(need_) {}
  std::size_t have;
  std::size_t need;
};

/// Bisection could not attribute the regression: a candidate config
/// could not be replayed, or the endpoints do not actually disagree.
class BisectionInconclusiveError : public AnalysisError {
public:
  using AnalysisError::AnalysisError;
};

}  // namespace benchpark
