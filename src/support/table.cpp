#include "src/support/table.hpp"

#include "src/support/error.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw Error("table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() > header_.size()) {
    throw Error("table row has " + std::to_string(row.size()) +
                " cells, table has " + std::to_string(header_.size()) +
                " columns");
  }
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

namespace {

std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths;
  widths.reserve(header.size());
  for (const auto& h : header) widths.push_back(h.size());
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  return widths;
}

std::string separator(const std::vector<std::size_t>& widths) {
  std::string out = "+";
  for (auto w : widths) {
    out += repeat("-", w + 2);
    out += "+";
  }
  out += "\n";
  return out;
}

std::string render_row(const std::vector<std::string>& row,
                       const std::vector<std::size_t>& widths,
                       char border) {
  std::string out;
  out.push_back(border);
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out += " ";
    out += pad_right(c < row.size() ? row[c] : "", widths[c]);
    out += " ";
    out.push_back(border);
  }
  out += "\n";
  return out;
}

}  // namespace

std::string Table::render() const {
  auto widths = column_widths(header_, rows_);
  std::string out = separator(widths);
  out += render_row(header_, widths, '|');
  out += separator(widths);
  for (const auto& row : rows_) out += render_row(row, widths, '|');
  out += separator(widths);
  return out;
}

std::string Table::render_markdown() const {
  auto widths = column_widths(header_, rows_);
  std::string out = render_row(header_, widths, '|');
  out += "|";
  for (auto w : widths) {
    out += repeat("-", w + 2);
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row, widths, '|');
  return out;
}

}  // namespace benchpark::support
