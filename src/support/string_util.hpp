// Small string helpers used across the code base.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace benchpark::support {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Split on the first occurrence of `sep`; returns {s, ""} if absent.
std::pair<std::string, std::string> split_first(std::string_view s, char sep);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading and trailing whitespace.
std::string trim(std::string_view s);

/// True if `s` starts with / ends with `prefix`/`suffix`.
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// True if `s` contains `needle`.
bool contains(std::string_view s, std::string_view needle);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Replace all occurrences of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

/// Repeat `s` `n` times.
std::string repeat(std::string_view s, std::size_t n);

/// Left/right pad with spaces to `width` (no-op if already wider).
std::string pad_right(std::string_view s, std::size_t width);
std::string pad_left(std::string_view s, std::size_t width);

/// Format a double without trailing zero noise ("1.5", "2", "0.0466").
std::string format_double(double v, int max_precision = 6);

/// True if every character satisfies [A-Za-z0-9_-].
bool is_identifier(std::string_view s);

/// Parse a non-negative integer; throws benchpark::Error on failure.
long long parse_int(std::string_view s);

/// Best-effort double parse; throws benchpark::Error on failure.
double parse_double(std::string_view s);

/// True if the string parses fully as an integer / double.
bool looks_like_int(std::string_view s);
bool looks_like_double(std::string_view s);

}  // namespace benchpark::support
