// Process-wide string interning.
//
// Hot paths compare and hash the same small set of names over and over:
// package/spec names during concretization, variant keys during canonical
// rendering, and `{variable}` names during template expansion. The
// interner maps each distinct string to a dense, stable 32-bit id once;
// after that, equality is an integer compare and hashing is the identity,
// instead of re-walking the bytes every time.
//
// Concurrency follows the same RCU discipline as the caches
// (support/snapshot.hpp): the id table is an immutable snapshot readers
// load with one atomic operation, so the warm path — intern() of an
// already-known string, lookup(), view() — is lock-free. Only the first
// intern() of a new string takes the writer mutex, copies the table, and
// publishes the extended snapshot. Ids are never reused and the backing
// string storage is append-only, so a returned id or string_view stays
// valid for the life of the process.
//
// Id 0 is reserved for "empty / not interned": intern("") returns 0 and
// view(0) is the empty string, which lets callers use 0 as a cheap
// sentinel (e.g. spec::Spec's default-constructed name).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace benchpark::support {

class Interner {
public:
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  /// The process-wide instance everyone shares (ids are only comparable
  /// within one interner).
  static Interner& global();

  /// Id for `text`, inserting on first sight. Warm calls are lock-free;
  /// the empty string is always id 0.
  std::uint32_t intern(std::string_view text);

  /// Id for `text` if it has been interned, 0 otherwise. Never inserts,
  /// never locks.
  [[nodiscard]] std::uint32_t lookup(std::string_view text) const;

  /// The interned bytes for `id` (empty for 0 or out-of-range). The view
  /// points into append-only storage and never dangles.
  [[nodiscard]] std::string_view view(std::uint32_t id) const;

  /// Distinct non-empty strings interned so far.
  [[nodiscard]] std::size_t size() const;

private:
  Interner();
  struct Impl;
  Impl* impl_;  // leaked singleton payload; never destroyed
};

/// Convenience wrappers over Interner::global().
inline std::uint32_t intern(std::string_view text) {
  return Interner::global().intern(text);
}
inline std::string_view intern_view(std::uint32_t id) {
  return Interner::global().view(id);
}

}  // namespace benchpark::support
