#include "src/support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "src/obs/trace.hpp"

namespace benchpark::support {

namespace {

thread_local bool t_on_worker = false;

/// Hard ceiling on spawned workers; requests beyond it queue up and are
/// drained by the existing workers (work sharing, not one thread each).
constexpr std::size_t kMaxWorkers = 256;

/// Completion state shared between one run_batch caller and its chunk
/// tasks. Lives on the caller's stack: the caller cannot return before
/// remaining hits zero, and finish_one() is the workers' last access.
struct Batch {
  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t remaining = 0;
  std::exception_ptr error;

  void finish_one(std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mu);
    if (err && !error) error = std::move(err);
    if (--remaining == 0) done_cv.notify_all();
  }
};

}  // namespace

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

int ThreadPool::default_threads() {
  static const int threads = [] {
    if (const char* env = std::getenv("BENCHPARK_NUM_THREADS")) {
      int parsed = std::atoi(env);
      if (parsed >= 1) return parsed;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return threads;
}

std::size_t ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

std::uint64_t ThreadPool::workers_spawned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spawned_;
}

void ThreadPool::ensure_workers_locked(std::size_t wanted) {
  wanted = std::min(wanted, kMaxWorkers);
  while (workers_.size() < wanted) {
    workers_.emplace_back([this] { worker_loop(); });
    ++spawned_;
  }
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::run_batch(std::size_t chunks,
                           const std::function<void(std::size_t)>& chunk_fn) {
  if (chunks == 0) return;
  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan span(collector, "pool.batch", "pool");
  if (span.active()) span.annotate("chunks", std::to_string(chunks));
  if (chunks == 1 || t_on_worker) {
    // Nested parallelism collapses onto the enclosing worker: the outer
    // batch already owns the machine, and a worker blocked waiting on a
    // sub-batch could deadlock the shared queue.
    for (std::size_t c = 0; c < chunks; ++c) chunk_fn(c);
    return;
  }

  // Fanned-out chunks adopt the caller's innermost span (the pool.batch
  // span above when tracing) so the span tree stays rooted at the
  // submitting thread regardless of which worker runs which chunk.
  const std::uint64_t ambient_parent =
      collector.enabled() ? collector.current_span() : 0;

  Batch batch;
  batch.remaining = chunks - 1;
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ensure_workers_locked(chunks - 1);
    for (std::size_t c = 0; c + 1 < chunks; ++c) {
      queue_.emplace_back([&batch, &chunk_fn, &collector, ambient_parent, c] {
        obs::ScopedParent ambient(collector, ambient_parent);
        std::exception_ptr err;
        try {
          chunk_fn(c);
        } catch (...) {
          err = std::current_exception();
        }
        batch.finish_one(std::move(err));
      });
    }
    depth = queue_.size();
  }
  if (collector.enabled()) {
    collector.gauge_set("pool.queue_depth", static_cast<double>(depth));
  }
  work_cv_.notify_all();

  std::exception_ptr caller_error;
  try {
    chunk_fn(chunks - 1);  // the calling thread takes the last chunk
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::exception_ptr first_error;
  {
    std::unique_lock<std::mutex> lock(batch.mu);
    batch.done_cv.wait(lock, [&] { return batch.remaining == 0; });
    first_error = batch.error ? batch.error : caller_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace benchpark::support
