// Nearest-rank percentile over a small sample set.
//
// The service bench publishes admission-wait p50/p99 into
// BENCH_service.json; nearest-rank is the textbook definition
// (ceil(p/100 * N)-th smallest), exact for the sample — no
// interpolation, so a gate on p99 compares like with like across runs.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace benchpark::support {

/// Nearest-rank percentile of `values` (p in [0, 100]). Returns 0 for an
/// empty sample. Sorts a copy; fine for the bench-sized samples this is
/// meant for.
inline double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  if (rank == 0) rank = 1;
  return values[rank - 1];
}

}  // namespace benchpark::support
