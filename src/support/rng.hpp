// Deterministic random number generation.
//
// Simulated measurements (build times, collective timings, noise) must be
// reproducible run-to-run, so everything uses an explicitly seeded
// SplitMix64 generator rather than std::random_device.
#pragma once

#include <cstdint>

namespace benchpark::support {

/// SplitMix64: tiny, fast, and statistically solid for simulation noise.
class Rng {
public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next_u64() % n : 0; }

  /// Approximately normal(0,1) via sum of uniforms (Irwin–Hall, k=12).
  double next_gaussian() {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += next_double();
    return sum - 6.0;
  }

  /// Multiplicative noise factor: 1 + sigma * N(0,1), clamped positive.
  double noise_factor(double sigma) {
    double f = 1.0 + sigma * next_gaussian();
    return f > 0.05 ? f : 0.05;
  }

private:
  std::uint64_t state_;
};

}  // namespace benchpark::support
