// Seeded, deterministic fault injection.
//
// Trustworthy continuous benchmarking across federated HPC sites must
// treat partial failure as the common case: mirrors blip, build steps
// flake, jobs get preempted. This module lets tests and chaos runs
// *program* those failures so every retry path in the codebase can be
// exercised reproducibly. Hot paths declare named fault sites
// ("buildcache.fetch", "install.build_step", "ci.job", "ci.mirror",
// "sched.job", "runtime.exec") and report each attempt to the process-wide
// FaultPlan; the plan decides — purely as a function of (seed, site, key,
// attempt) — whether that attempt fails, and with what severity.
//
// Keying decisions on the operation's stable key (a DAG hash, a job name)
// and its attempt number, rather than on a global hit counter, is what
// makes the failure schedule independent of thread interleaving: two runs
// with the same seed produce byte-identical install reports even when the
// wavefront engine schedules packages in a different order.
//
// Plans are programmable from code (tests) or from the
// BENCHPARK_FAULT_PLAN environment variable (chaos CI):
//
//   BENCHPARK_FAULT_PLAN="seed=42;buildcache.fetch:nth=1;install.build_step:p=0.2"
//
// Grammar: ';'-separated clauses. "seed=N" sets the plan seed; every
// other clause is "<site>:<param>=<value>,..." with parameters
//   nth=N       fail attempts N .. N+count-1 of every matching operation
//   count=M     width of the nth window (default 1)
//   p=X         fail each attempt independently with probability X
//   key=K       only match operations with this exact key
//   latency=S   inject S modeled seconds instead of (or alongside) failing
//   kind=transient|permanent|none   severity (default: transient, or
//               none when only latency is given)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace benchpark::support {

/// Severity of an injected fault. `none` means the rule only injects
/// latency; `transient` throws TransientError (retry loops recover);
/// `permanent` throws PermanentError (retry loops give up immediately).
enum class FaultKind { none, transient, permanent };

[[nodiscard]] std::string_view fault_kind_name(FaultKind k);

/// One programmed fault. Trigger precedence: an attempt window (nth > 0)
/// if set, else a per-attempt probability (p > 0), else every hit.
struct FaultRule {
  std::string site;            // exact fault-site name
  std::string key;             // exact operation key; empty matches any
  std::uint64_t nth = 0;       // 1-based first failing attempt; 0 = off
  std::uint64_t count = 1;     // how many consecutive attempts fail
  double probability = 0.0;    // per-attempt failure probability
  double latency_seconds = 0.0;
  FaultKind kind = FaultKind::transient;
};

/// Per-site observability counters; snapshot via FaultPlan::counters().
struct FaultSiteCounters {
  std::uint64_t hits = 0;       // attempts reported at the site
  std::uint64_t failures = 0;   // attempts the plan failed
  double latency_seconds = 0.0; // total injected latency
};

/// A programmable schedule of failures. The process-wide instance
/// (global()) is what production fault sites consult; tests may also
/// build standalone plans.
class FaultPlan {
public:
  FaultPlan() = default;

  // Copying clones the programmed rules and seed but gives the copy its
  // own counters and lock (used by ScopedFaultPlan to save/restore).
  FaultPlan(const FaultPlan& other);
  FaultPlan& operator=(const FaultPlan& other);

  /// The shared plan every built-in fault site consults. On first use it
  /// is loaded from BENCHPARK_FAULT_PLAN when that is set (malformed
  /// specs throw loudly rather than silently running fault-free).
  static FaultPlan& global();

  /// Parse the BENCHPARK_FAULT_PLAN grammar. Throws Error on bad specs.
  static FaultPlan parse(std::string_view spec);

  void add_rule(FaultRule rule);
  void set_seed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t seed() const;
  /// Drop all rules and counters (the plan becomes a no-op).
  void clear();
  /// True when no rules are programmed; on_hit is then a single relaxed
  /// atomic load.
  [[nodiscard]] bool empty() const;
  /// Stable content hash of (seed, rules); "" for an empty plan. The
  /// experiment store key folds this in so results produced under a
  /// fault plan are never conflated with clean runs (an injected latency
  /// changes the outcome, so it must change the content address too).
  /// When `site_prefixes` is non-empty only rules whose site starts with
  /// one of the prefixes are hashed ("" again if none match): the store
  /// key uses {"experiment.", "runtime."} so a plan that only perturbs,
  /// say, service dispatch or cache fetches does not retire every
  /// experiment's content address.
  [[nodiscard]] std::string fingerprint(
      const std::vector<std::string>& site_prefixes = {}) const;

  /// Report attempt `attempt` (1-based) of the operation identified by
  /// `key` at fault site `site`. Returns the injected latency in modeled
  /// seconds (usually 0); throws TransientError or PermanentError when
  /// the plan fails this attempt. Thread-safe; the decision depends only
  /// on (seed, site, key, attempt), never on call order.
  double on_hit(std::string_view site, std::string_view key = {},
                std::uint64_t attempt = 1);

  [[nodiscard]] FaultSiteCounters counters(std::string_view site) const;
  [[nodiscard]] std::uint64_t total_hits() const;
  [[nodiscard]] std::uint64_t total_failures() const;

private:
  mutable std::mutex mu_;
  std::vector<FaultRule> rules_;
  std::uint64_t seed_ = 0;
  std::map<std::string, FaultSiteCounters, std::less<>> counters_;
  std::atomic<bool> armed_{false};  // fast path: any rules programmed?
};

/// Convenience: FaultPlan::global().on_hit(...). This is what production
/// fault sites call.
double fault_hit(std::string_view site, std::string_view key = {},
                 std::uint64_t attempt = 1);

/// RAII save/restore of the global plan for tests: snapshot on
/// construction, restore on destruction, so a test can clear() and
/// program its own schedule without leaking it into later tests (or
/// clobbering a chaos plan installed via BENCHPARK_FAULT_PLAN).
class ScopedFaultPlan {
public:
  ScopedFaultPlan() : saved_(FaultPlan::global()) {}
  ~ScopedFaultPlan() { FaultPlan::global() = saved_; }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

private:
  FaultPlan saved_;
};

}  // namespace benchpark::support
