// Pooled fork-join parallel_for / parallel_reduce.
//
// The real benchmark kernels (saxpy, STREAM, multigrid smoothers) and the
// wavefront install engine use these as their OpenMP stand-in: contiguous
// index ranges are split into chunks executed by the persistent
// ThreadPool workers, with the calling thread taking the final chunk.
// There is no per-call thread construction; workers are parked between
// calls (see src/support/thread_pool.hpp for the full contract).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "src/support/thread_pool.hpp"

namespace benchpark::support {

namespace detail {

/// [begin, end) of chunk t when [0, n) is cut into k near-equal parts
/// (the first n % k chunks are one element longer).
inline std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                       std::size_t k,
                                                       std::size_t t) {
  std::size_t base = n / k;
  std::size_t remainder = n % k;
  std::size_t begin = t * base + std::min(t, remainder);
  return {begin, begin + base + (t < remainder ? 1 : 0)};
}

}  // namespace detail

/// Run fn(begin, end) over [0, n) split into at most `threads` contiguous
/// chunks on the shared pool. threads <= 1 runs inline. fn must be safe
/// to run concurrently on disjoint ranges.
template <typename Fn>
void parallel_for(std::size_t n, int threads, Fn&& fn) {
  if (threads <= 1 || n < 2) {
    fn(std::size_t{0}, n);
    return;
  }
  std::size_t chunks =
      std::min(static_cast<std::size_t>(threads), n);
  ThreadPool::global().run_batch(chunks, [&](std::size_t t) {
    auto [begin, end] = detail::chunk_range(n, chunks, t);
    fn(begin, end);
  });
}

/// Reduce over [0, n): fn(begin, end) returns the partial for one chunk,
/// `combine` folds partials (must be associative), `identity` seeds the
/// fold. threads <= 1 runs inline.
template <typename T, typename Fn, typename Combine>
T parallel_reduce(std::size_t n, int threads, T identity, Fn&& fn,
                  Combine&& combine) {
  if (threads <= 1 || n < 2) {
    return combine(std::move(identity), fn(std::size_t{0}, n));
  }
  std::size_t chunks =
      std::min(static_cast<std::size_t>(threads), n);
  std::vector<T> partials(chunks, identity);
  ThreadPool::global().run_batch(chunks, [&](std::size_t t) {
    auto [begin, end] = detail::chunk_range(n, chunks, t);
    partials[t] = fn(begin, end);
  });
  T total = std::move(identity);
  for (auto& partial : partials) total = combine(std::move(total), std::move(partial));
  return total;
}

}  // namespace benchpark::support
