// Minimal fork-join parallel_for over std::thread.
//
// The real benchmark kernels (saxpy, STREAM, multigrid smoothers) use this
// as their OpenMP stand-in: contiguous index ranges are split across
// worker threads, and the calling thread participates (CP.4: tasks over
// raw threads; threads are joined before return, CP.23/25).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace benchpark::support {

/// Run fn(begin, end) over [0, n) split into `threads` contiguous chunks.
/// threads <= 1 runs inline. fn must be safe to run concurrently on
/// disjoint ranges.
template <typename Fn>
void parallel_for(std::size_t n, int threads, Fn&& fn) {
  if (threads <= 1 || n < 2) {
    fn(std::size_t{0}, n);
    return;
  }
  auto nthreads = static_cast<std::size_t>(threads);
  if (nthreads > n) nthreads = n;
  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  std::size_t chunk = n / nthreads;
  std::size_t remainder = n % nthreads;
  std::size_t begin = 0;
  for (std::size_t t = 0; t < nthreads; ++t) {
    std::size_t size = chunk + (t < remainder ? 1 : 0);
    std::size_t end = begin + size;
    if (t + 1 == nthreads) {
      fn(begin, end);  // calling thread takes the last chunk
    } else {
      pool.emplace_back([&fn, begin, end] { fn(begin, end); });
    }
    begin = end;
  }
  for (auto& th : pool) th.join();
}

}  // namespace benchpark::support
