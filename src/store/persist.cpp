#include "src/store/persist.hpp"

#include <cstdio>
#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "src/buildcache/binary_cache.hpp"
#include "src/concretizer/concretize_cache.hpp"
#include "src/env/environment.hpp"
#include "src/install/installer.hpp"
#include "src/ramble/expansion.hpp"
#include "src/support/hash.hpp"
#include "src/support/log.hpp"
#include "src/yaml/emitter.hpp"
#include "src/yaml/node.hpp"
#include "src/yaml/parser.hpp"

namespace benchpark::store {

namespace {

constexpr std::string_view kBinaryKind = "binary";
constexpr std::string_view kConcretizeKind = "concretize";
constexpr std::string_view kTemplateKind = "template";
constexpr std::string_view kInstallKind = "install";
constexpr std::string_view kExperimentKind = "experiment";
constexpr std::string_view kMetaKind = "meta";

yaml::EmitOptions emit_opts() {
  yaml::EmitOptions opts;
  // Persisted values that look like numbers/booleans/dates must stay
  // strings under any YAML reader, not just ours.
  opts.quote_numeric_strings = true;
  return opts;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// {spec: <node>, index: {hash: <node>, ...}} — the self-contained
/// closure concrete_spec_from_node needs to rebuild the spec.
void add_closure(const spec::Spec& s, yaml::Node& index) {
  const std::string hash = s.dag_hash();
  if (index.has(hash)) return;
  index[hash] = env::concrete_spec_to_node(s);
  for (const auto& d : s.dependencies()) add_closure(d, index);
}

void put_spec_closure(yaml::Node& root, const spec::Spec& s) {
  root["spec"] = env::concrete_spec_to_node(s);
  yaml::Node index = yaml::Node::make_mapping();
  add_closure(s, index);
  root["index"] = std::move(index);
}

spec::Spec spec_from_closure(const yaml::Node& root) {
  return env::concrete_spec_from_node(root.at("spec"), root.at("index"));
}

install::InstallSource source_from_name(std::string_view name) {
  if (name == "cache") return install::InstallSource::binary_cache;
  if (name == "external") return install::InstallSource::external;
  if (name == "installed") return install::InstallSource::already;
  return install::InstallSource::source_build;
}

void warn_skip(std::string_view kind, const std::string& key,
               const char* what) {
  support::Log::warn("store: skipping " + std::string(kind) + " record '" +
                     key + "': " + what);
}

}  // namespace

// ------------------------------------------------------ global caches

WarmStartReport warm_start_global_caches(const StoreHandle& store) {
  WarmStartReport report;
  if (!store || !store->begin_warm_start()) return report;
  report.attempted = true;

  auto& ccache = concretizer::ConcretizationCache::global();
  store->for_each(kConcretizeKind, [&](const std::string& key,
                                       const std::string& value) {
    try {
      yaml::Node n = yaml::parse(value);
      spec::Spec s = spec_from_closure(n);
      const auto seq =
          static_cast<std::uint64_t>(n.at("sequence").as_int());
      ccache.restore_entry(key, std::move(s), seq);
      ++report.concretize_entries;
    } catch (const std::exception& e) {
      ++report.skipped_records;
      warn_skip(kConcretizeKind, key, e.what());
    }
  });
  if (auto meta = store->get(kMetaKind, "concretize.stats")) {
    try {
      yaml::Node n = yaml::parse(*meta);
      concretizer::ConcretizeCacheStats stats;
      stats.hits = static_cast<std::size_t>(n.at("hits").as_int());
      stats.misses = static_cast<std::size_t>(n.at("misses").as_int());
      stats.inserts = static_cast<std::size_t>(n.at("inserts").as_int());
      stats.evictions = static_cast<std::size_t>(n.at("evictions").as_int());
      stats.invalidations =
          static_cast<std::size_t>(n.at("invalidations").as_int());
      ccache.restore_stats(stats);
    } catch (const std::exception& e) {
      ++report.skipped_records;
      warn_skip(kMetaKind, "concretize.stats", e.what());
    }
  }

  auto& tcache = ramble::TemplateCache::global();
  store->for_each(kTemplateKind, [&](const std::string& key,
                                     const std::string& value) {
    try {
      yaml::Node n = yaml::parse(value);
      const auto seq =
          static_cast<std::uint64_t>(n.at("sequence").as_int());
      tcache.restore_entry(n.at("text").as_string(), seq);
      ++report.template_entries;
    } catch (const std::exception& e) {
      ++report.skipped_records;
      warn_skip(kTemplateKind, key, e.what());
    }
  });
  if (auto meta = store->get(kMetaKind, "template.stats")) {
    try {
      yaml::Node n = yaml::parse(*meta);
      ramble::TemplateCacheStats stats;
      stats.hits = static_cast<std::size_t>(n.at("hits").as_int());
      stats.misses = static_cast<std::size_t>(n.at("misses").as_int());
      stats.inserts = static_cast<std::size_t>(n.at("inserts").as_int());
      stats.evictions = static_cast<std::size_t>(n.at("evictions").as_int());
      tcache.restore_stats(stats);
    } catch (const std::exception& e) {
      ++report.skipped_records;
      warn_skip(kMetaKind, "template.stats", e.what());
    }
  }
  return report;
}

void persist_global_caches(const StoreHandle& store) {
  if (!store) return;
  const auto opts = emit_opts();

  auto& ccache = concretizer::ConcretizationCache::global();
  ccache.for_each_entry([&](const std::string& key, const spec::Spec& s,
                            std::uint64_t sequence) {
    yaml::Node root = yaml::Node::make_mapping();
    put_spec_closure(root, s);
    root["sequence"] = yaml::Node(static_cast<long long>(sequence));
    store->put(kConcretizeKind, key, yaml::emit(root, opts));
  });
  {
    const auto stats = ccache.stats();
    yaml::Node n = yaml::Node::make_mapping();
    n["hits"] = yaml::Node(static_cast<long long>(stats.hits));
    n["misses"] = yaml::Node(static_cast<long long>(stats.misses));
    n["inserts"] = yaml::Node(static_cast<long long>(stats.inserts));
    n["evictions"] = yaml::Node(static_cast<long long>(stats.evictions));
    n["invalidations"] =
        yaml::Node(static_cast<long long>(stats.invalidations));
    store->put(kMetaKind, "concretize.stats", yaml::emit(n, opts));
  }

  auto& tcache = ramble::TemplateCache::global();
  for (const auto& [text, sequence] : tcache.export_entries()) {
    yaml::Node root = yaml::Node::make_mapping();
    root["text"] = yaml::Node(text);
    root["sequence"] = yaml::Node(static_cast<long long>(sequence));
    store->put(kTemplateKind, support::hash_base32(text),
               yaml::emit(root, opts));
  }
  {
    const auto stats = tcache.stats();
    yaml::Node n = yaml::Node::make_mapping();
    n["hits"] = yaml::Node(static_cast<long long>(stats.hits));
    n["misses"] = yaml::Node(static_cast<long long>(stats.misses));
    n["inserts"] = yaml::Node(static_cast<long long>(stats.inserts));
    n["evictions"] = yaml::Node(static_cast<long long>(stats.evictions));
    store->put(kMetaKind, "template.stats", yaml::emit(n, opts));
  }
}

// -------------------------------------------------------- binary cache

std::size_t warm_binary_cache(const StoreHandle& store,
                              buildcache::BinaryCache& cache) {
  if (!store) return 0;
  std::vector<buildcache::CacheEntry> entries;
  store->for_each(kBinaryKind, [&](const std::string& key,
                                   const std::string& value) {
    try {
      yaml::Node n = yaml::parse(value);
      buildcache::CacheEntry e;
      e.dag_hash = key;
      e.short_spec = n.at("short_spec").as_string();
      e.size_bytes = static_cast<std::uint64_t>(n.at("size_bytes").as_int());
      e.sequence = static_cast<std::uint64_t>(n.at("sequence").as_int());
      entries.push_back(std::move(e));
    } catch (const std::exception& e) {
      warn_skip(kBinaryKind, key, e.what());
    }
  });
  buildcache::CacheStats stats;
  const auto meta = store->get(kMetaKind, "binary.stats");
  if (meta) {
    try {
      yaml::Node n = yaml::parse(*meta);
      stats.hits = static_cast<std::size_t>(n.at("hits").as_int());
      stats.misses = static_cast<std::size_t>(n.at("misses").as_int());
      stats.pushes = static_cast<std::size_t>(n.at("pushes").as_int());
      stats.retries = static_cast<std::size_t>(n.at("retries").as_int());
      stats.evictions = static_cast<std::size_t>(n.at("evictions").as_int());
    } catch (const std::exception& e) {
      warn_skip(kMetaKind, "binary.stats", e.what());
    }
  }
  if (entries.empty() && !meta) return 0;  // nothing persisted yet
  cache.restore(entries, stats);
  return entries.size();
}

void persist_binary_cache(const StoreHandle& store,
                          const buildcache::BinaryCache& cache) {
  if (!store) return;
  const auto opts = emit_opts();
  for (const auto& entry : cache.export_entries()) {
    yaml::Node n = yaml::Node::make_mapping();
    n["short_spec"] = yaml::Node(entry.short_spec);
    n["size_bytes"] = yaml::Node(static_cast<long long>(entry.size_bytes));
    n["sequence"] = yaml::Node(static_cast<long long>(entry.sequence));
    store->put(kBinaryKind, entry.dag_hash, yaml::emit(n, opts));
  }
  const auto stats = cache.stats();
  yaml::Node n = yaml::Node::make_mapping();
  n["hits"] = yaml::Node(static_cast<long long>(stats.hits));
  n["misses"] = yaml::Node(static_cast<long long>(stats.misses));
  n["pushes"] = yaml::Node(static_cast<long long>(stats.pushes));
  n["retries"] = yaml::Node(static_cast<long long>(stats.retries));
  n["evictions"] = yaml::Node(static_cast<long long>(stats.evictions));
  store->put(kMetaKind, "binary.stats", yaml::emit(n, opts));
}

// -------------------------------------------------------- install tree

std::size_t warm_install_tree(const StoreHandle& store,
                              install::InstallTree& tree) {
  if (!store) return 0;
  std::size_t loaded = 0;
  store->for_each(kInstallKind, [&](const std::string& key,
                                    const std::string& value) {
    if (tree.find(key) != nullptr) return;  // fresher in-process record
    try {
      yaml::Node n = yaml::parse(value);
      install::InstallRecord r;
      r.spec = spec_from_closure(n);
      r.prefix = n.at("prefix").as_string();
      r.source = source_from_name(n.at("source").as_string());
      r.simulated_seconds = n.at("simulated_seconds").as_double();
      r.arch_flags = n.at("arch_flags").as_string_or("");
      r.attempts = static_cast<int>(n.at("attempts").as_int_or(1));
      if (n.has("retry_wait_seconds")) {
        r.retry_wait_seconds = n.at("retry_wait_seconds").as_double();
      }
      if (n.has("build_args")) {
        r.build_args = n.at("build_args").as_string_list();
      }
      tree.add(std::move(r));
      ++loaded;
    } catch (const std::exception& e) {
      warn_skip(kInstallKind, key, e.what());
    }
  });
  return loaded;
}

void persist_install_tree(const StoreHandle& store,
                          const install::InstallTree& tree) {
  if (!store) return;
  const auto opts = emit_opts();
  for (const install::InstallRecord* r : tree.all()) {
    yaml::Node n = yaml::Node::make_mapping();
    put_spec_closure(n, r->spec);
    n["prefix"] = yaml::Node(r->prefix);
    n["source"] = yaml::Node(std::string(install_source_name(r->source)));
    n["simulated_seconds"] = yaml::Node(fmt_double(r->simulated_seconds));
    n["arch_flags"] = yaml::Node(r->arch_flags);
    n["attempts"] = yaml::Node(static_cast<long long>(r->attempts));
    n["retry_wait_seconds"] = yaml::Node(fmt_double(r->retry_wait_seconds));
    if (!r->build_args.empty()) {
      yaml::Node args = yaml::Node::make_sequence();
      for (const auto& a : r->build_args) args.push_back(yaml::Node(a));
      n["build_args"] = std::move(args);
    }
    store->put(kInstallKind, r->spec.dag_hash(), yaml::emit(n, opts));
  }
}

// --------------------------------------------------------- experiments

std::optional<ExperimentRecord> load_experiment(const StoreHandle& store,
                                                std::string_view key) {
  if (!store) return std::nullopt;
  auto value = store->get(kExperimentKind, key);
  if (!value) return std::nullopt;
  try {
    yaml::Node n = yaml::parse(*value);
    ExperimentRecord r;
    r.success = n.at("success").as_bool();
    r.timed_out = n.at("timed_out").as_bool();
    r.attempts = static_cast<int>(n.at("attempts").as_int());
    r.retry_wait_seconds = n.at("retry_wait_seconds").as_double();
    r.runtime_seconds = n.at("runtime_seconds").as_double();
    r.output = n.at("output").as_string_or("");
    return r;
  } catch (const std::exception& e) {
    warn_skip(kExperimentKind, std::string(key), e.what());
    return std::nullopt;
  }
}

void save_experiment(const StoreHandle& store, std::string_view key,
                     const ExperimentRecord& record) {
  if (!store) return;
  yaml::Node n = yaml::Node::make_mapping();
  n["success"] = yaml::Node(record.success);
  n["timed_out"] = yaml::Node(record.timed_out);
  n["attempts"] = yaml::Node(static_cast<long long>(record.attempts));
  n["retry_wait_seconds"] = yaml::Node(fmt_double(record.retry_wait_seconds));
  n["runtime_seconds"] = yaml::Node(fmt_double(record.runtime_seconds));
  n["output"] = yaml::Node(record.output);
  store->put(kExperimentKind, key, yaml::emit(n, emit_opts()));
}

}  // namespace benchpark::store
