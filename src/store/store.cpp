#include "src/store/store.hpp"

#include <charconv>
#include <cstdlib>
#include <utility>
#include <vector>

#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/hash.hpp"
#include "src/support/log.hpp"

namespace benchpark::store {

namespace {

constexpr std::string_view kHeader = "benchpark-store 1\n";
constexpr char kSep = '\x1f';
constexpr std::string_view kJournalName = "journal.bps";

/// Compact when the journal carries this many dead frames past the live
/// set (the +64 floor keeps tiny stores from compacting on every flush).
std::size_t compact_threshold(std::size_t live) { return 2 * live + 64; }

std::string checksum(std::string_view op, std::string_view kind,
                     std::string_view key, std::string_view value) {
  return support::Hasher{}
      .update(op)
      .update(kind)
      .update(key)
      .update(value)
      .base32();
}

bool parse_size(std::string_view token, std::size_t& out) {
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

}  // namespace

Store::Store(std::filesystem::path dir) : dir_(std::move(dir)) {}

Store::~Store() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; anything unflushed is recomputable.
  }
}

std::filesystem::path Store::journal_path() const {
  return dir_ / kJournalName;
}

StoreHandle Store::open(const std::filesystem::path& dir) {
  support::ensure_dir(dir);
  StoreHandle handle(new Store(dir));
  handle->load();
  return handle;
}

StoreHandle Store::open_from_env() {
  const char* dir = std::getenv("BENCHPARK_STORE_DIR");
  if (dir == nullptr || *dir == '\0') return nullptr;
  // One handle per directory per process, so every workspace in a
  // campaign shares the same journal and dedup set.
  static std::mutex mu;
  static std::map<std::string, StoreHandle> open_stores;
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = open_stores.try_emplace(dir);
  if (inserted) it->second = open(dir);
  return it->second;
}

std::string Store::record_key(std::string_view kind, std::string_view key) {
  std::string out;
  out.reserve(kind.size() + 1 + key.size());
  out.append(kind);
  out.push_back(kSep);
  out.append(key);
  return out;
}

std::string Store::encode_record(std::string_view op, std::string_view kind,
                                 std::string_view key,
                                 std::string_view value) {
  std::string out;
  out.reserve(op.size() + kind.size() + key.size() + value.size() + 48);
  out.append(op);
  out.push_back(' ');
  out.append(kind);
  out.push_back(' ');
  out.append(std::to_string(key.size()));
  out.push_back(' ');
  out.append(std::to_string(value.size()));
  out.push_back(' ');
  out.append(checksum(op, kind, key, value));
  out.push_back('\n');
  out.append(key);
  out.append(value);
  out.push_back('\n');
  return out;
}

void Store::load() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto path = journal_path();
  std::string content;
  try {
    support::fault_hit("store.load", dir_.string());
    if (std::filesystem::exists(path)) content = support::read_file(path);
  } catch (const Error& e) {
    support::Log::warn("store: cannot load " + path.string() + " (" +
                       e.what() + "); starting cold");
    stats_.cold_start = true;
    live_.clear();
    journal_records_ = 0;
    return;
  }
  if (content.empty()) return;  // fresh store
  if (content.rfind(kHeader, 0) != 0) {
    support::Log::warn("store: unrecognized journal header in " +
                       path.string() + "; starting cold");
    stats_.cold_start = true;
    return;
  }
  std::size_t pos = kHeader.size();
  bool truncated = false;
  while (pos < content.size()) {
    const std::size_t header_end = content.find('\n', pos);
    if (header_end == std::string::npos) {
      truncated = true;
      break;
    }
    std::string_view header =
        std::string_view(content).substr(pos, header_end - pos);
    // "op kind key-bytes value-bytes checksum"
    std::string_view tokens[5];
    std::size_t n_tokens = 0;
    std::size_t tok_start = 0;
    bool bad = false;
    for (std::size_t i = 0; i <= header.size(); ++i) {
      if (i == header.size() || header[i] == ' ') {
        if (i == tok_start || n_tokens == 5) {
          bad = true;
          break;
        }
        tokens[n_tokens++] = header.substr(tok_start, i - tok_start);
        tok_start = i + 1;
      }
    }
    std::size_t key_size = 0;
    std::size_t value_size = 0;
    if (bad || n_tokens != 5 || (tokens[0] != "rec" && tokens[0] != "del") ||
        !parse_size(tokens[2], key_size) ||
        !parse_size(tokens[3], value_size)) {
      truncated = true;
      break;
    }
    const std::size_t payload = header_end + 1;
    if (payload + key_size + value_size + 1 > content.size() ||
        content[payload + key_size + value_size] != '\n') {
      truncated = true;
      break;
    }
    std::string_view key =
        std::string_view(content).substr(payload, key_size);
    std::string_view value =
        std::string_view(content).substr(payload + key_size, value_size);
    if (checksum(tokens[0], tokens[1], key, value) != tokens[4]) {
      truncated = true;
      break;
    }
    if (tokens[0] == "rec") {
      live_[record_key(tokens[1], key)] = std::string(value);
    } else {
      live_.erase(record_key(tokens[1], key));
    }
    ++journal_records_;
    pos = payload + key_size + value_size + 1;
  }
  if (truncated) {
    ++stats_.dropped_records;
    support::Log::warn(
        "store: corrupt or truncated record at byte " + std::to_string(pos) +
        " of " + path.string() + "; kept " +
        std::to_string(journal_records_) + " valid record(s), dropped the " +
        "rest");
  }
  stats_.loaded_records = live_.size();
  // Restore the invariant that appends land after well-formed frames:
  // rewrite immediately when a tail was dropped, or when the journal is
  // mostly dead weight.
  if (truncated || journal_records_ > compact_threshold(live_.size())) {
    compact_locked();
  }
}

std::optional<std::string> Store::get(std::string_view kind,
                                      std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(record_key(kind, key));
  if (it == live_.end()) return std::nullopt;
  return it->second;
}

bool Store::contains(std::string_view kind, std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.find(record_key(kind, key)) != live_.end();
}

void Store::put(std::string_view kind, std::string_view key,
                std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto k = record_key(kind, key);
  auto it = live_.find(k);
  if (it != live_.end() && it->second == value) return;  // dedup
  if (it != live_.end()) {
    it->second = std::string(value);
  } else {
    live_.emplace(std::move(k), std::string(value));
  }
  pending_bytes_ += encode_record("rec", kind, key, value);
  ++pending_records_;
}

bool Store::erase(std::string_view kind, std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_.erase(record_key(kind, key)) == 0) return false;
  pending_bytes_ += encode_record("del", kind, key, {});
  ++pending_records_;
  return true;
}

void Store::for_each(
    std::string_view kind,
    const std::function<void(const std::string&, const std::string&)>& fn)
    const {
  std::vector<std::pair<std::string, std::string>> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::string prefix = record_key(kind, {});
    for (auto it = live_.lower_bound(prefix); it != live_.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      rows.emplace_back(it->first.substr(prefix.size()), it->second);
    }
  }
  for (const auto& [key, value] : rows) fn(key, value);
}

void Store::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_records_ == 0) return;
  const auto path = journal_path();
  try {
    support::fault_hit("store.flush", dir_.string());
    if (!std::filesystem::exists(path)) {
      support::append_file_sync(path, std::string(kHeader));
    }
    support::append_file_sync(path, pending_bytes_);
  } catch (const Error& e) {
    // Keep the batch pending: a later flush (or the destructor) retries,
    // and the worst case is recomputing what this batch recorded.
    support::Log::warn("store: flush of " +
                       std::to_string(pending_records_) + " record(s) to " +
                       path.string() + " deferred (" + e.what() + ")");
    return;
  }
  journal_records_ += pending_records_;
  stats_.appended_records += pending_records_;
  pending_bytes_.clear();
  pending_records_ = 0;
  if (journal_records_ > compact_threshold(live_.size())) compact_locked();
}

void Store::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  compact_locked();
}

void Store::compact_locked() {
  std::string content(kHeader);
  for (const auto& [k, value] : live_) {
    const std::size_t sep = k.find(kSep);
    std::string_view kind = std::string_view(k).substr(0, sep);
    std::string_view key = std::string_view(k).substr(sep + 1);
    content += encode_record("rec", kind, key, value);
  }
  try {
    support::write_file(journal_path(), content);
  } catch (const Error& e) {
    support::Log::warn("store: compaction of " + journal_path().string() +
                       " failed (" + e.what() + ")");
    return;
  }
  journal_records_ = live_.size();
  // The rewrite covered everything in live_, pending included.
  pending_bytes_.clear();
  pending_records_ = 0;
  ++stats_.compactions;
}

std::size_t Store::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

std::size_t Store::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_records_;
}

StoreStats Store::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace benchpark::store
