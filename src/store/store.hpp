// Crash-safe, journaled on-disk content-addressed store.
//
// The paper's collaborative continuous-benchmarking loop only pays off
// when a fresh Driver run can reuse what earlier runs already computed:
// concretized specs, mirrored build artifacts, compiled templates, and
// completed experiment results (exaCB's incremental-collection model —
// persist results keyed by content hashes, re-run only what changed).
// This module is the durability layer: a single append-only journal of
// checksummed (kind, key, value) records plus periodic compaction.
//
// Durability model:
//   * put() buffers records in memory; flush() appends them to the
//     journal with one write + fsync ("store.flush" fault site — a
//     failed flush warns and keeps the batch pending, never crashes);
//   * compact() rewrites only the live records through fs_util's
//     write-temp + fsync + atomic-rename, so a crash at any instant
//     leaves either the old journal or the new one, never a torn file;
//   * load replays the journal and stops at the first corrupt or
//     truncated record, keeping the valid prefix — a store that cannot
//     be read at all degrades to a cold start with a warning ("store.load"
//     fault site), never an exception out of open().
//
// Record framing (text header, length-prefixed payload so keys/values
// may contain any bytes):
//
//   benchpark-store 1\n
//   rec <kind> <key-bytes> <value-bytes> <fnv1a-base32>\n<key><value>\n
//   del <kind> <key-bytes> 0 <fnv1a-base32>\n<key>\n
//
// The checksum covers op, kind, key and value with separator bytes, so a
// bit flip anywhere in the frame is caught. Within one journal, the last
// record for a (kind, key) wins — compaction drops the dead versions.
#pragma once

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace benchpark::store {

class Store;
/// Shared ownership: the driver, workspace, and caches all hold the same
/// open store; the journal flushes on the last release.
using StoreHandle = std::shared_ptr<Store>;

/// Load/compaction observability, snapshot via Store::stats().
struct StoreStats {
  std::size_t loaded_records = 0;    // live records replayed at open
  std::size_t dropped_records = 0;   // corrupt/truncated records skipped
  std::size_t appended_records = 0;  // records flushed this process
  std::size_t compactions = 0;
  bool cold_start = false;  // load failed entirely; started empty
};

class Store {
public:
  /// Open (creating if needed) the store rooted at `dir`. Never throws
  /// for journal corruption — that degrades to a cold start with a
  /// warning; only an unusable directory throws benchpark::Error.
  static StoreHandle open(const std::filesystem::path& dir);

  /// The store named by BENCHPARK_STORE_DIR, or nullptr when the
  /// variable is unset/empty. One handle per process per directory.
  static StoreHandle open_from_env();

  ~Store();

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  [[nodiscard]] std::optional<std::string> get(std::string_view kind,
                                               std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view kind,
                              std::string_view key) const;
  /// Record (or overwrite) a value. Identical (kind, key, value) triples
  /// are deduplicated so steady-state warm re-runs append nothing.
  void put(std::string_view kind, std::string_view key,
           std::string_view value);
  /// Tombstone a record; false when absent.
  bool erase(std::string_view kind, std::string_view key);

  /// Visit every live (key, value) of one kind, in key order. The
  /// callback runs outside the store lock, so it may call back into the
  /// store.
  void for_each(std::string_view kind,
                const std::function<void(const std::string&,
                                         const std::string&)>& fn) const;

  /// Append pending records to the journal and fsync. Passes the
  /// "store.flush" fault site: injected faults warn and keep the batch
  /// pending for a later flush instead of throwing.
  void flush();
  /// Rewrite the journal with live records only (temp + fsync + rename).
  void compact();

  /// Live records (all kinds).
  [[nodiscard]] std::size_t size() const;
  /// Records buffered by put() but not yet flushed.
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] StoreStats stats() const;

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }
  [[nodiscard]] std::filesystem::path journal_path() const;

  /// First caller wins: guards the once-per-store warm start of the
  /// process-wide caches (ConcretizationCache, TemplateCache).
  [[nodiscard]] bool begin_warm_start() {
    return !warm_started_.exchange(true);
  }

private:
  explicit Store(std::filesystem::path dir);

  /// Replay the journal into live_. Corruption keeps the valid prefix;
  /// a completely unreadable journal becomes a cold start. Only called
  /// from open(), before the handle escapes.
  void load();

  [[nodiscard]] static std::string record_key(std::string_view kind,
                                              std::string_view key);
  [[nodiscard]] static std::string encode_record(std::string_view op,
                                                 std::string_view kind,
                                                 std::string_view key,
                                                 std::string_view value);
  /// Compaction body; caller holds mu_.
  void compact_locked();

  std::filesystem::path dir_;
  mutable std::mutex mu_;
  /// "kind\x1fkey" -> value. Ordered so compaction output (and therefore
  /// the on-disk bytes for identical contents) is deterministic.
  std::map<std::string, std::string, std::less<>> live_;
  std::string pending_bytes_;
  std::size_t pending_records_ = 0;
  /// Records currently framed in the journal file (live + dead); drives
  /// the dead-ratio compaction trigger.
  std::size_t journal_records_ = 0;
  StoreStats stats_;
  std::atomic<bool> warm_started_{false};
};

}  // namespace benchpark::store
