// Persistence adapters between the on-disk store and the in-memory
// caches (binary cache index, concretization cache, template cache,
// install tree, completed experiment results).
//
// Each adapter serializes through the project YAML emitter (with
// quote_numeric_strings on, so values that look like numbers, booleans,
// or dates survive typed readers) and restores through the caches'
// restore APIs, which publish via the normal hazard-pointer snapshot
// path and preserve insert sequences and stats counters — a reloaded
// cache evicts in the same oldest-first order, and its obs counters stay
// monotone across process restarts.
//
// Record kinds used in the journal:
//   "binary"      dag hash        -> cache index entry
//   "concretize"  cache key       -> concrete spec (+ dependency closure)
//   "template"    hash(text)      -> template source text + sequence
//   "install"     dag hash        -> install record (+ spec closure)
//   "experiment"  experiment key  -> completed run outcome
//   "meta"        "<cache>.stats" -> persisted counters
//
// Corrupt or unparsable individual records are skipped with a warning —
// a bad entry costs a recomputation, never a crash.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "src/store/store.hpp"

namespace benchpark::buildcache {
class BinaryCache;
}
namespace benchpark::install {
class InstallTree;
}

namespace benchpark::store {

/// What a once-per-store warm start of the process-wide caches loaded.
struct WarmStartReport {
  /// False when another call already warmed this store (or store null).
  bool attempted = false;
  std::size_t concretize_entries = 0;
  std::size_t template_entries = 0;
  /// Records that failed to parse and were skipped.
  std::size_t skipped_records = 0;
};

/// Warm-load the process-wide ConcretizationCache and TemplateCache from
/// `store`, exactly once per store handle (guarded by
/// Store::begin_warm_start). Safe to call with a null handle.
WarmStartReport warm_start_global_caches(const StoreHandle& store);

/// Snapshot the process-wide caches into `store` (put only; callers
/// flush).
void persist_global_caches(const StoreHandle& store);

/// Restore a workspace's binary-cache index (entries, sequences, stats);
/// returns the number of entries loaded.
std::size_t warm_binary_cache(const StoreHandle& store,
                              buildcache::BinaryCache& cache);
void persist_binary_cache(const StoreHandle& store,
                          const buildcache::BinaryCache& cache);

/// Restore install-tree records (keyed by DAG hash). A warm record makes
/// the installer's skip-if-installed path report the package as
/// `already_installed`, which is what turns an unchanged re-run into
/// zero installs. Returns the number of records loaded.
std::size_t warm_install_tree(const StoreHandle& store,
                              install::InstallTree& tree);
void persist_install_tree(const StoreHandle& store,
                          const install::InstallTree& tree);

/// The stored outcome of one completed experiment execution.
struct ExperimentRecord {
  bool success = false;
  bool timed_out = false;
  int attempts = 1;
  double retry_wait_seconds = 0.0;
  double runtime_seconds = 0.0;
  std::string output;
};

[[nodiscard]] std::optional<ExperimentRecord> load_experiment(
    const StoreHandle& store, std::string_view key);
void save_experiment(const StoreHandle& store, std::string_view key,
                     const ExperimentRecord& record);

}  // namespace benchpark::store
