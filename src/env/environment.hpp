// Spack-like environments: manifest + lockfile (Section 3.1, Figure 2/3).
//
// "In Spack, environment manifests are treated as user input, and the
// output of the concretizer is written to a lockfile." An Environment
// holds abstract user specs (the manifest), concretizes them (optionally
// unified), and emits a lockfile that fully pins the build: that lockfile
// is what makes Benchpark experiments functionally reproducible.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/concretizer/concretizer.hpp"
#include "src/install/installer.hpp"
#include "src/spec/spec.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::env {

class Environment {
public:
  Environment() = default;

  /// Figure 3: build an environment from a spack.yaml manifest node.
  static Environment from_manifest(const yaml::Node& spack_yaml);

  // -- manifest manipulation (spack env create / spack add) -------------
  void add(const std::string& abstract_spec_text);
  void add(spec::Spec abstract);
  /// Remove by package name; returns false when absent.
  bool remove(std::string_view package_name);

  [[nodiscard]] const std::vector<spec::Spec>& user_specs() const {
    return user_specs_;
  }
  [[nodiscard]] bool unify() const { return unify_; }
  void set_unify(bool unify) { unify_ = unify; }
  [[nodiscard]] bool view() const { return view_; }
  void set_view(bool view) { view_ = view; }

  /// Emit the manifest back as a spack.yaml tree (round-trips Figure 3).
  [[nodiscard]] yaml::Node manifest_yaml() const;

  // -- concretization (spack concretize) ----------------------------------
  /// Resolve the manifest through Concretizer::concretize_all (memo cache
  /// on, roots fanned out on the shared pool).
  void concretize(const concretizer::Concretizer& concretizer);
  [[nodiscard]] bool concretized() const { return !concrete_specs_.empty(); }
  /// Cache traffic of the most recent concretize() call.
  [[nodiscard]] std::size_t concretize_cache_hits() const {
    return concretize_cache_hits_;
  }
  [[nodiscard]] std::size_t concretize_cache_misses() const {
    return concretize_cache_misses_;
  }
  [[nodiscard]] const std::vector<spec::Spec>& concrete_specs() const {
    return concrete_specs_;
  }
  [[nodiscard]] const spec::Spec* concrete_for(
      std::string_view package_name) const;

  /// Lockfile with roots and the fully pinned closure, keyed by DAG hash.
  [[nodiscard]] yaml::Node lockfile() const;
  /// Rebuild a concretized environment from a lockfile (functional
  /// reproducibility: no concretizer needed on the consuming side).
  static Environment from_lockfile(const yaml::Node& lockfile);

  // -- installation (spack install) -----------------------------------------
  install::InstallReport install_all(
      install::Installer& installer,
      const install::InstallOptions& options = {}) const;

private:
  std::vector<spec::Spec> user_specs_;
  std::vector<spec::Spec> concrete_specs_;
  bool unify_ = true;
  bool view_ = true;
  std::size_t concretize_cache_hits_ = 0;
  std::size_t concretize_cache_misses_ = 0;
};

/// Serialize one concrete spec (with dependency hashes) to a lockfile
/// node; exposed for tests and the metrics database.
yaml::Node concrete_spec_to_node(const spec::Spec& s);
/// Inverse of concrete_spec_to_node given a hash->node index.
spec::Spec concrete_spec_from_node(
    const yaml::Node& node, const yaml::Node& index);

}  // namespace benchpark::env
