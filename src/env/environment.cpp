#include "src/env/environment.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/parallel.hpp"

namespace benchpark::env {

using spec::Spec;
using yaml::Node;

Environment Environment::from_manifest(const Node& spack_yaml) {
  Environment env;
  const Node& body =
      spack_yaml.has("spack") ? spack_yaml.at("spack") : spack_yaml;
  for (const auto& text : body.at("specs").as_string_list()) {
    env.add(text);
  }
  env.unify_ = body.path("concretizer.unify").as_bool_or(true);
  env.view_ = body.at("view").as_bool_or(true);
  return env;
}

void Environment::add(const std::string& abstract_spec_text) {
  add(Spec::parse(abstract_spec_text));
}

void Environment::add(Spec abstract) {
  if (abstract.name().empty()) {
    throw Error("environments require named specs");
  }
  // Adding the same package again merges constraints (like `spack add`
  // refusing duplicates; we choose merge semantics for ergonomics).
  for (auto& existing : user_specs_) {
    if (existing.name() == abstract.name()) {
      existing.constrain(abstract);
      concrete_specs_.clear();  // invalidate stale concretization
      return;
    }
  }
  user_specs_.push_back(std::move(abstract));
  concrete_specs_.clear();
}

bool Environment::remove(std::string_view package_name) {
  auto it = std::find_if(
      user_specs_.begin(), user_specs_.end(),
      [&](const Spec& s) { return s.name() == package_name; });
  if (it == user_specs_.end()) return false;
  user_specs_.erase(it);
  concrete_specs_.clear();
  return true;
}

Node Environment::manifest_yaml() const {
  Node root = Node::make_mapping();
  Node& body = root["spack"];
  body = Node::make_mapping();
  Node specs = Node::make_sequence();
  for (const auto& s : user_specs_) specs.push_back(Node(s.str()));
  body["specs"] = std::move(specs);
  Node& cz = body["concretizer"];
  cz = Node::make_mapping();
  cz["unify"] = Node(unify_);
  body["view"] = Node(view_);
  return root;
}

void Environment::concretize(const concretizer::Concretizer& concretizer) {
  concretizer::ConcretizeRequest request;
  request.roots = user_specs_;
  request.unify = unify_;
  auto result = concretizer.concretize_all(request);
  concrete_specs_ = std::move(result.specs);
  concretize_cache_hits_ = result.cache_hits;
  concretize_cache_misses_ = result.cache_misses;
}

const Spec* Environment::concrete_for(std::string_view package_name) const {
  for (const auto& s : concrete_specs_) {
    if (s.name() == package_name) return &s;
  }
  // Also search dependency closures.
  for (const auto& root : concrete_specs_) {
    std::vector<const Spec*> stack{&root};
    while (!stack.empty()) {
      const Spec* s = stack.back();
      stack.pop_back();
      if (s->name() == package_name) return s;
      for (const auto& d : s->dependencies()) stack.push_back(&d);
    }
  }
  return nullptr;
}

// ------------------------------------------------------------------ lockfile

Node concrete_spec_to_node(const Spec& s) {
  Node node = Node::make_mapping();
  node["name"] = Node(s.name());
  node["version"] = Node(s.concrete_version().str());
  if (s.compiler()) node["compiler"] = Node(s.compiler()->str());
  node["target"] = Node(s.target());
  if (!s.variants().empty()) {
    Node& variants = node["variants"];
    variants = Node::make_mapping();
    for (const auto& [vname, vvalue] : s.variants()) {
      variants[vname] = Node(vvalue.value_str());
    }
  }
  if (s.is_external()) node["external"] = Node(s.external_prefix());
  if (!s.dependencies().empty()) {
    Node& deps = node["dependencies"];
    deps = Node::make_mapping();
    for (const auto& d : s.dependencies()) {
      deps[d.name()] = Node(d.dag_hash());
    }
  }
  return node;
}

namespace {

void collect_closure(const Spec& s, Node& index) {
  auto hash = s.dag_hash();
  if (index.has(hash)) return;
  index[hash] = concrete_spec_to_node(s);
  for (const auto& d : s.dependencies()) collect_closure(d, index);
}

}  // namespace

Node Environment::lockfile() const {
  if (!concretized()) throw Error("environment is not concretized");
  Node root = Node::make_mapping();
  Node& meta = root["_meta"];
  meta = Node::make_mapping();
  meta["file-type"] = Node("benchpark-lockfile");
  meta["lockfile-version"] = Node(1);

  Node roots = Node::make_sequence();
  for (std::size_t i = 0; i < concrete_specs_.size(); ++i) {
    Node entry = Node::make_mapping();
    entry["spec"] = Node(user_specs_[i].str());
    entry["hash"] = Node(concrete_specs_[i].dag_hash());
    roots.push_back(std::move(entry));
  }
  root["roots"] = std::move(roots);

  Node& index = root["concrete_specs"];
  index = Node::make_mapping();
  for (const auto& s : concrete_specs_) collect_closure(s, index);
  return root;
}

spec::Spec concrete_spec_from_node(const Node& node, const Node& index) {
  Spec s(node.at("name").as_string());
  s.set_versions(spec::VersionConstraint::exactly(
      spec::Version(node.at("version").as_string())));
  if (node.has("compiler")) {
    auto parsed = Spec::parse("x%" + node.at("compiler").as_string());
    s.set_compiler(*parsed.compiler());
  }
  s.set_target(node.at("target").as_string());
  if (node.has("variants")) {
    for (const auto& [vname, vvalue] : node.at("variants").map()) {
      s.set_variant(vname, spec::VariantValue::parse(vvalue.as_string()));
    }
  }
  if (node.has("external")) {
    s.set_external_prefix(node.at("external").as_string());
  }
  if (node.has("dependencies")) {
    for (const auto& [dname, dhash] : node.at("dependencies").map()) {
      const Node& dep_node = index.at(dhash.as_string());
      if (dep_node.is_null()) {
        throw Error("lockfile is missing concrete spec for hash " +
                    dhash.as_string());
      }
      s.add_dependency(concrete_spec_from_node(dep_node, index));
    }
  }
  s.mark_concrete();
  return s;
}

Environment Environment::from_lockfile(const Node& lockfile) {
  Environment env;
  const Node& index = lockfile.at("concrete_specs");
  for (const auto& entry : lockfile.at("roots").items()) {
    env.user_specs_.push_back(Spec::parse(entry.at("spec").as_string()));
    const Node& node = index.at(entry.at("hash").as_string());
    if (node.is_null()) {
      throw Error("lockfile root hash not found: " +
                  entry.at("hash").as_string());
    }
    env.concrete_specs_.push_back(concrete_spec_from_node(node, index));
  }
  return env;
}

install::InstallReport Environment::install_all(
    install::Installer& installer,
    const install::InstallOptions& options) const {
  if (!concretized()) throw Error("environment is not concretized");
  // Distinct roots install concurrently against the shared installer.
  // The Coordination object elects one root (first in manifest order) as
  // the builder of every shared hash, so a shared dependency builds
  // exactly once and builder attribution — hence the merged log — is the
  // same bytes run after run, even under an active fault plan. A failed
  // shared build is posted to the failure board, waking waiting roots
  // instead of wedging them; parallel_for waits for every root before
  // rethrowing the first failure.
  install::Installer::Coordination coord(concrete_specs_);
  std::vector<install::InstallReport> reports(concrete_specs_.size());
  const int threads = options.engine_threads > 0
                          ? options.engine_threads
                          : support::ThreadPool::default_threads();
  support::parallel_for(
      concrete_specs_.size(), threads, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          reports[i] = installer.install(concrete_specs_[i], options, &coord, i);
        }
      });

  install::InstallReport combined;
  for (auto& report : reports) {
    combined.total_simulated_seconds += report.total_simulated_seconds;
    // Roots run side by side, so the modeled wall-clock is the slowest
    // root's chain, not the sum.
    combined.critical_path_seconds = std::max(combined.critical_path_seconds,
                                              report.critical_path_seconds);
    combined.from_cache += report.from_cache;
    combined.from_source += report.from_source;
    combined.externals += report.externals;
    combined.already_installed += report.already_installed;
    combined.total_attempts += report.total_attempts;
    combined.retry_wait_seconds += report.retry_wait_seconds;
    combined.build_log += report.build_log;
    for (auto& r : report.installed) combined.installed.push_back(std::move(r));
  }
  return combined;
}

}  // namespace benchpark::env
