// In-memory model of git hosting (GitHub/GitLab) — the substrate for the
// Figure 6 automation loop: canonical repository on GitHub, mirrored to
// GitLab for CI, pull requests from forks with review/approval state and
// status checks streamed back.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace benchpark::ci {

/// One commit: content-addressed snapshot of the repo file tree.
struct Commit {
  std::string sha;
  std::string author;
  std::string message;
  std::map<std::string, std::string> files;  // full tree snapshot
};

/// A repository with branches.
class GitRepo {
public:
  GitRepo() = default;
  GitRepo(std::string owner, std::string name);

  [[nodiscard]] const std::string& owner() const { return owner_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::string full_name() const { return owner_ + "/" + name_; }

  /// Commit a change set (upserts files; empty content deletes) on a
  /// branch, creating it from `from_branch` when absent. Returns the sha.
  std::string commit(const std::string& branch, const std::string& author,
                     const std::string& message,
                     const std::map<std::string, std::string>& changes,
                     const std::string& from_branch = "main");

  [[nodiscard]] bool has_branch(std::string_view branch) const;
  [[nodiscard]] const Commit* head(std::string_view branch) const;
  [[nodiscard]] const Commit* find_commit(std::string_view sha) const;
  /// Branch history, oldest first.
  [[nodiscard]] std::vector<std::string> log(std::string_view branch) const;
  [[nodiscard]] std::optional<std::string> file_at(
      std::string_view branch, std::string_view path) const;
  [[nodiscard]] std::vector<std::string> branches() const;

  /// Force a branch to point at an existing commit (mirror primitive).
  void set_branch(const std::string& branch, const std::string& sha);
  /// Import a commit object verbatim (mirror primitive).
  void import_commit(const Commit& commit);

private:
  std::string owner_;
  std::string name_;
  std::map<std::string, std::vector<std::string>> branches_;  // sha history
  std::map<std::string, Commit> commits_;
};

enum class PrState { open, merged, closed };
enum class CheckState { pending, running, success, failure };

[[nodiscard]] std::string_view check_state_name(CheckState s);

/// A status check on a PR head (the GitHub-side view of CI progress that
/// Hubcast streams back).
struct StatusCheck {
  std::string name;  // "gitlab-ci/llnl/build"
  CheckState state = CheckState::pending;
  std::string description;
};

struct PullRequest {
  std::uint64_t id = 0;
  std::string title;
  std::string author;
  std::string source_repo;    // full name (may be a fork)
  std::string source_branch;
  std::string target_repo;
  std::string target_branch;
  PrState state = PrState::open;
  std::vector<std::string> approvals;  // reviewer logins
  std::vector<StatusCheck> checks;

  [[nodiscard]] bool approved_by(std::string_view user) const;
  [[nodiscard]] const StatusCheck* check(std::string_view name) const;
};

/// A hosting service instance ("github" / "gitlab").
class GitHost {
public:
  explicit GitHost(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  GitRepo& create_repo(const std::string& owner, const std::string& repo);
  /// Fork `source` under `new_owner`; copies all branches.
  GitRepo& fork(const std::string& source_full_name,
                const std::string& new_owner);
  [[nodiscard]] GitRepo& repo(std::string_view full_name);
  [[nodiscard]] const GitRepo* find_repo(std::string_view full_name) const;

  std::uint64_t open_pr(const std::string& title, const std::string& author,
                        const std::string& source_repo,
                        const std::string& source_branch,
                        const std::string& target_repo,
                        const std::string& target_branch = "main");
  [[nodiscard]] PullRequest& pr(std::uint64_t id);
  void approve_pr(std::uint64_t id, const std::string& reviewer);
  /// Merge: fast-forward the target branch to the source head. Requires
  /// the PR to be open.
  void merge_pr(std::uint64_t id);
  void set_status(std::uint64_t id, const StatusCheck& check);

private:
  std::string name_;
  std::map<std::string, GitRepo> repos_;
  std::map<std::uint64_t, PullRequest> prs_;
  std::uint64_t next_pr_ = 1;
};

}  // namespace benchpark::ci
