#include "src/ci/git.hpp"

#include <algorithm>

#include "src/support/error.hpp"
#include "src/support/hash.hpp"

namespace benchpark::ci {

// ------------------------------------------------------------------ GitRepo

GitRepo::GitRepo(std::string owner, std::string name)
    : owner_(std::move(owner)), name_(std::move(name)) {}

std::string GitRepo::commit(const std::string& branch,
                            const std::string& author,
                            const std::string& message,
                            const std::map<std::string, std::string>& changes,
                            const std::string& from_branch) {
  // Start from the branch head (or the base branch for a new branch).
  std::map<std::string, std::string> tree;
  std::string parent_sha;
  if (const Commit* parent = head(branch)) {
    tree = parent->files;
    parent_sha = parent->sha;
  } else if (const Commit* base = head(from_branch)) {
    tree = base->files;
    parent_sha = base->sha;
  }
  for (const auto& [path, content] : changes) {
    if (content.empty()) {
      tree.erase(path);
    } else {
      tree[path] = content;
    }
  }
  support::Hasher h;
  h.update(parent_sha);
  h.update(author);
  h.update(message);
  for (const auto& [path, content] : tree) {
    h.update(path);
    h.update(content);
  }
  Commit c;
  c.sha = h.hex();
  c.author = author;
  c.message = message;
  c.files = std::move(tree);
  commits_[c.sha] = c;
  branches_[branch].push_back(c.sha);
  return c.sha;
}

bool GitRepo::has_branch(std::string_view branch) const {
  return branches_.count(std::string(branch)) > 0;
}

const Commit* GitRepo::head(std::string_view branch) const {
  auto it = branches_.find(std::string(branch));
  if (it == branches_.end() || it->second.empty()) return nullptr;
  return &commits_.at(it->second.back());
}

const Commit* GitRepo::find_commit(std::string_view sha) const {
  auto it = commits_.find(std::string(sha));
  return it == commits_.end() ? nullptr : &it->second;
}

std::vector<std::string> GitRepo::log(std::string_view branch) const {
  auto it = branches_.find(std::string(branch));
  return it == branches_.end() ? std::vector<std::string>{} : it->second;
}

std::optional<std::string> GitRepo::file_at(std::string_view branch,
                                            std::string_view path) const {
  const Commit* c = head(branch);
  if (!c) return std::nullopt;
  auto it = c->files.find(std::string(path));
  if (it == c->files.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> GitRepo::branches() const {
  std::vector<std::string> out;
  out.reserve(branches_.size());
  for (const auto& [name, history] : branches_) out.push_back(name);
  return out;
}

void GitRepo::set_branch(const std::string& branch, const std::string& sha) {
  if (!commits_.count(sha)) {
    throw CiError("cannot set branch '" + branch + "' to unknown commit " +
                  sha);
  }
  branches_[branch].push_back(sha);
}

void GitRepo::import_commit(const Commit& commit) {
  commits_[commit.sha] = commit;
}

// -------------------------------------------------------------- PullRequest

bool PullRequest::approved_by(std::string_view user) const {
  return std::find(approvals.begin(), approvals.end(), user) !=
         approvals.end();
}

const StatusCheck* PullRequest::check(std::string_view name) const {
  for (const auto& c : checks) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string_view check_state_name(CheckState s) {
  switch (s) {
    case CheckState::pending: return "pending";
    case CheckState::running: return "running";
    case CheckState::success: return "success";
    case CheckState::failure: return "failure";
  }
  return "?";
}

// ------------------------------------------------------------------ GitHost

GitRepo& GitHost::create_repo(const std::string& owner,
                              const std::string& repo) {
  std::string full = owner + "/" + repo;
  auto [it, inserted] = repos_.try_emplace(full, GitRepo(owner, repo));
  if (!inserted) throw CiError("repo already exists: " + full);
  return it->second;
}

GitRepo& GitHost::fork(const std::string& source_full_name,
                       const std::string& new_owner) {
  const GitRepo* source = find_repo(source_full_name);
  if (!source) throw CiError("cannot fork unknown repo " + source_full_name);
  GitRepo& fork = create_repo(new_owner, source->name());
  for (const auto& branch : source->branches()) {
    for (const auto& sha : source->log(branch)) {
      fork.import_commit(*source->find_commit(sha));
      fork.set_branch(branch, sha);
    }
  }
  return fork;
}

GitRepo& GitHost::repo(std::string_view full_name) {
  auto it = repos_.find(std::string(full_name));
  if (it == repos_.end()) {
    throw CiError("unknown repo '" + std::string(full_name) + "' on " +
                  name_);
  }
  return it->second;
}

const GitRepo* GitHost::find_repo(std::string_view full_name) const {
  auto it = repos_.find(std::string(full_name));
  return it == repos_.end() ? nullptr : &it->second;
}

std::uint64_t GitHost::open_pr(const std::string& title,
                               const std::string& author,
                               const std::string& source_repo,
                               const std::string& source_branch,
                               const std::string& target_repo,
                               const std::string& target_branch) {
  if (!find_repo(source_repo)) throw CiError("unknown source " + source_repo);
  if (!find_repo(target_repo)) throw CiError("unknown target " + target_repo);
  if (!repo(source_repo).has_branch(source_branch)) {
    throw CiError("source branch '" + source_branch + "' does not exist");
  }
  PullRequest pr;
  pr.id = next_pr_++;
  pr.title = title;
  pr.author = author;
  pr.source_repo = source_repo;
  pr.source_branch = source_branch;
  pr.target_repo = target_repo;
  pr.target_branch = target_branch;
  auto id = pr.id;
  prs_[id] = std::move(pr);
  return id;
}

PullRequest& GitHost::pr(std::uint64_t id) {
  auto it = prs_.find(id);
  if (it == prs_.end()) throw CiError("unknown PR #" + std::to_string(id));
  return it->second;
}

void GitHost::approve_pr(std::uint64_t id, const std::string& reviewer) {
  auto& pull = pr(id);
  if (pull.state != PrState::open) throw CiError("PR is not open");
  if (!pull.approved_by(reviewer)) pull.approvals.push_back(reviewer);
}

void GitHost::merge_pr(std::uint64_t id) {
  auto& pull = pr(id);
  if (pull.state != PrState::open) throw CiError("PR is not open");
  const Commit* source_head =
      repo(pull.source_repo).head(pull.source_branch);
  if (!source_head) throw CiError("source branch has no commits");
  GitRepo& target = repo(pull.target_repo);
  target.import_commit(*source_head);
  target.set_branch(pull.target_branch, source_head->sha);
  pull.state = PrState::merged;
}

void GitHost::set_status(std::uint64_t id, const StatusCheck& check) {
  auto& pull = pr(id);
  for (auto& existing : pull.checks) {
    if (existing.name == check.name) {
      existing = check;
      return;
    }
  }
  pull.checks.push_back(check);
}

}  // namespace benchpark::ci
