#include "src/ci/hubcast.hpp"

#include <algorithm>

#include "src/obs/trace.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"

namespace benchpark::ci {

std::string_view mirror_denial_text(MirrorDenial d) {
  switch (d) {
    case MirrorDenial::pr_not_open:
      return "pull request is not open";
    case MirrorDenial::needs_admin_approval:
      return "fork PRs require review and approval by a site and system "
             "administrator before running on HPC resources";
    case MirrorDenial::protected_path_touched:
      return "PR modifies protected CI configuration; admin approval "
             "required";
  }
  return "?";
}

Hubcast::Hubcast(GitHost* github, GitHost* gitlab, std::string canonical_repo,
                 SecurityPolicy policy)
    : github_(github),
      gitlab_(gitlab),
      canonical_(std::move(canonical_repo)),
      policy_(std::move(policy)) {
  if (!github_ || !gitlab_) throw CiError("hubcast needs both hosts");
  if (!github_->find_repo(canonical_)) {
    throw CiError("canonical repo '" + canonical_ + "' missing on GitHub");
  }
  if (!gitlab_->find_repo(canonical_)) {
    throw CiError("canonical repo '" + canonical_ + "' missing on GitLab");
  }
}

MirrorDecision Hubcast::evaluate(std::uint64_t pr_id) const {
  const auto& pr = const_cast<GitHost*>(github_)->pr(pr_id);
  MirrorDecision decision;
  if (pr.state != PrState::open) {
    decision.denial = MirrorDenial::pr_not_open;
    decision.detail = std::string(mirror_denial_text(*decision.denial));
    return decision;
  }

  bool has_admin_approval = std::any_of(
      pr.approvals.begin(), pr.approvals.end(),
      [&](const std::string& user) { return policy_.admins.count(user); });

  // Protected paths: compare the PR head tree against the target head.
  const auto* source_head =
      const_cast<GitHost*>(github_)->repo(pr.source_repo).head(
          pr.source_branch);
  const auto* target_head =
      const_cast<GitHost*>(github_)->repo(pr.target_repo).head(
          pr.target_branch);
  bool touches_protected = false;
  if (source_head) {
    for (const auto& path : policy_.protected_paths) {
      auto in_source = source_head->files.find(path);
      std::string source_content = in_source == source_head->files.end()
                                       ? ""
                                       : in_source->second;
      std::string target_content;
      if (target_head) {
        auto in_target = target_head->files.find(path);
        if (in_target != target_head->files.end()) {
          target_content = in_target->second;
        }
      }
      if (source_content != target_content) {
        touches_protected = true;
        break;
      }
    }
  }
  if (touches_protected && !has_admin_approval) {
    decision.denial = MirrorDenial::protected_path_touched;
    decision.detail = std::string(mirror_denial_text(*decision.denial));
    return decision;
  }

  bool from_fork = pr.source_repo != canonical_;
  bool trusted = policy_.trusted_users.count(pr.author) > 0;
  if (from_fork && !trusted && !has_admin_approval) {
    decision.denial = MirrorDenial::needs_admin_approval;
    decision.detail = std::string(mirror_denial_text(*decision.denial));
    return decision;
  }

  decision.allowed = true;
  return decision;
}

std::optional<std::string> Hubcast::try_mirror_pr(std::uint64_t pr_id) {
  obs::ScopedSpan span("mirror", "ci");
  if (span.active()) span.annotate("pr", std::to_string(pr_id));
  auto decision = evaluate(pr_id);
  if (!decision.allowed) {
    span.annotate("outcome", "blocked");
    StatusCheck blocked;
    blocked.name = "hubcast/mirror";
    blocked.state = CheckState::failure;
    blocked.description = decision.detail;
    github_->set_status(pr_id, blocked);
    return std::nullopt;
  }
  const auto& pr = github_->pr(pr_id);
  const auto* head = github_->repo(pr.source_repo).head(pr.source_branch);
  if (!head) throw CiError("PR head vanished");

  // The push to the GitLab mirror crosses a network boundary, so it runs
  // behind the "ci.mirror" fault site with a short retry; exhausted
  // transients surface as a failed hubcast/mirror check, not an
  // exception, so the bridge keeps processing other PRs.
  const std::string mirror_key = canonical_ + "#" + std::to_string(pr_id);
  for (int attempt = 1;; ++attempt) {
    try {
      support::fault_hit("ci.mirror", mirror_key,
                         static_cast<std::uint64_t>(attempt));
      break;
    } catch (const TransientError& e) {
      if (attempt >= 3) {
        StatusCheck failed;
        failed.name = "hubcast/mirror";
        failed.state = CheckState::failure;
        failed.description = std::string("mirror push failed after ") +
                             std::to_string(attempt) + " attempts: " + e.what();
        github_->set_status(pr_id, failed);
        span.annotate("outcome", "push-failed");
        return std::nullopt;
      }
    }
  }
  span.annotate("outcome", "mirrored");

  std::string mirror_branch = "pr-" + std::to_string(pr_id);
  GitRepo& mirror = gitlab_->repo(canonical_);
  mirror.import_commit(*head);
  mirror.set_branch(mirror_branch, head->sha);

  StatusCheck mirrored;
  mirrored.name = "hubcast/mirror";
  mirrored.state = CheckState::success;
  mirrored.description = "mirrored to gitlab:" + canonical_ + "@" +
                         mirror_branch;
  github_->set_status(pr_id, mirrored);
  return mirror_branch;
}

void Hubcast::report_status(std::uint64_t pr_id, const StatusCheck& check) {
  github_->set_status(pr_id, check);
}

void Hubcast::sync_default_branch() {
  const auto* head = github_->repo(canonical_).head("main");
  if (!head) return;
  GitRepo& mirror = gitlab_->repo(canonical_);
  mirror.import_commit(*head);
  mirror.set_branch("main", head->sha);
}

}  // namespace benchpark::ci
