// Hubcast (Section 3.3.1): secure mirroring between GitHub and GitLab.
//
// "Unlike GitLab's built-in mirroring functionality, Hubcast allows
// untrusted pull requests from forks to be mirrored to a GitLab once they
// pass a configured set of security criteria. ... a pull request must be
// reviewed and approved by a site and system administrator, before
// Hubcast will mirror the commit to GitLab, GitLab CI will begin
// executing, and the status will be streamed back through Hubcast to show
// as a native status check on the pull request on GitHub."
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/ci/git.hpp"

namespace benchpark::ci {

/// The configured set of security criteria.
struct SecurityPolicy {
  /// Site/system administrators whose approval unlocks fork PRs.
  std::set<std::string> admins;
  /// Users whose own PRs (from the canonical repo or their forks) are
  /// trusted without a fresh approval (e.g. maintainers).
  std::set<std::string> trusted_users;
  /// Paths a PR may not touch without admin approval even from trusted
  /// users (CI definitions — editing them reroutes what runs on HPC).
  std::set<std::string> protected_paths{".gitlab-ci.yml"};
};

/// Why a mirror request was denied (for actionable PR feedback).
enum class MirrorDenial {
  pr_not_open,
  needs_admin_approval,
  protected_path_touched,
};

[[nodiscard]] std::string_view mirror_denial_text(MirrorDenial d);

struct MirrorDecision {
  bool allowed = false;
  std::optional<MirrorDenial> denial;
  std::string detail;
};

class Hubcast {
public:
  /// Mirrors between `github` (canonical) and `gitlab` (CI side). The
  /// canonical repo must exist on both hosts.
  Hubcast(GitHost* github, GitHost* gitlab, std::string canonical_repo,
          SecurityPolicy policy);

  /// Evaluate the security criteria for a PR without mirroring.
  [[nodiscard]] MirrorDecision evaluate(std::uint64_t pr_id) const;

  /// Mirror the PR's head to GitLab as branch "pr-<id>" when the
  /// criteria pass. Returns the GitLab branch name, or nullopt with the
  /// denial recorded as a failing status check on the GitHub PR.
  std::optional<std::string> try_mirror_pr(std::uint64_t pr_id);

  /// Stream a CI status back to the GitHub PR (Figure 6 arrows 4/5).
  void report_status(std::uint64_t pr_id, const StatusCheck& check);

  /// Mirror the canonical default branch (post-merge sync).
  void sync_default_branch();

  [[nodiscard]] const SecurityPolicy& policy() const { return policy_; }

private:
  GitHost* github_;   // not owned
  GitHost* gitlab_;   // not owned
  std::string canonical_;
  SecurityPolicy policy_;
};

}  // namespace benchpark::ci
