// GitLab-CI-style pipeline engine (Section 3.3): stages, jobs, tagged
// runners at multiple HPC sites, and Jacamar-mediated execution identity.
//
// A pipeline definition is parsed from a .gitlab-ci.yml-shaped document:
//
//   stages: [build, bench, analyze]
//   build-saxpy:
//     stage: build
//     tags: [cts1]
//     script: [spack install saxpy]
//
// Job *effects* are supplied by the embedder: a JobAction callback keyed
// by job name runs the actual work (building environments, running
// workspaces) and returns success/failure plus a log. This keeps the
// engine generic while the Benchpark driver wires real behavior in.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/ci/jacamar.hpp"
#include "src/yaml/node.hpp"

namespace benchpark::ci {

struct CiJobDef {
  std::string name;
  std::string stage;
  std::vector<std::string> tags;    // runner must carry all of them
  std::vector<std::string> script;  // informational (rendered into logs)
  bool allow_failure = false;
};

struct PipelineDef {
  std::vector<std::string> stages;
  std::vector<CiJobDef> jobs;

  /// Parse the .gitlab-ci.yml subset above.
  static PipelineDef from_yaml(const yaml::Node& root);
  [[nodiscard]] std::vector<const CiJobDef*> jobs_in_stage(
      std::string_view stage) const;
};

/// A registered runner at a site.
struct RunnerDef {
  std::string id;               // "llnl-cts1-01"
  std::vector<std::string> tags;
  std::shared_ptr<Jacamar> executor;  // identity resolution + audit

  [[nodiscard]] bool matches(const std::vector<std::string>& tags) const;
};

/// What a job's action returns.
struct JobOutcome {
  bool success = true;
  std::string log;
};

/// Context handed to job actions.
struct JobContext {
  std::string job_name;
  std::string runner_id;
  std::string site;
  Jacamar::Identity identity;
  std::string commit_sha;
};

using JobAction = std::function<JobOutcome(const JobContext&)>;

enum class JobStatus { skipped, success, failed, no_runner };

/// Terminal pipeline state. `degraded` means the pipeline produced its
/// results but not cleanly: some job needed a transient-failure retry, or
/// an allow_failure job failed.
enum class PipelineStatus { success, degraded, failed };

[[nodiscard]] std::string_view pipeline_status_name(PipelineStatus s);

struct JobResultRecord {
  std::string name;
  std::string stage;
  JobStatus status = JobStatus::skipped;
  std::string runner_id;
  std::string ran_as;
  std::string log;
  /// Action invocations this job consumed: 1 for a clean run, 1+k after k
  /// transient retries, 0 for skipped / no_runner jobs.
  int attempts = 0;
};

struct PipelineResult {
  /// Back-compat alias for status != failed.
  bool success = true;
  PipelineStatus status = PipelineStatus::success;
  std::vector<JobResultRecord> jobs;

  [[nodiscard]] const JobResultRecord* job(std::string_view name) const;
};

/// Thread-safe for the common serving pattern: configure once
/// (register_runner / set_action), then run() many pipelines from many
/// threads concurrently. run() snapshots the runner and action tables
/// under the engine lock, so late registrations are also safe — they
/// apply to pipelines started after the call.
class PipelineEngine {
public:
  void register_runner(RunnerDef runner);
  /// Default action when no job-specific action is registered.
  void set_default_action(JobAction action);
  void set_action(const std::string& job_name, JobAction action);

  /// Run all stages in order. Jobs in a stage run on the first matching
  /// runner; a failed (non-allow_failure) job skips later stages.
  PipelineResult run(const PipelineDef& def, const std::string& commit_sha,
                     const std::string& triggered_by,
                     const std::string& approved_by = "");

  [[nodiscard]] std::vector<RunnerDef> runners() const {
    std::lock_guard<std::mutex> lock(mu_);
    return runners_;
  }

  /// Retries per job after a first transient failure (TransientError from
  /// the action or the "ci.job" fault site). Other exceptions still fail
  /// the job immediately.
  void set_max_job_retries(int retries) {
    std::lock_guard<std::mutex> lock(mu_);
    max_job_retries_ = retries;
  }
  [[nodiscard]] int max_job_retries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_job_retries_;
  }

private:
  mutable std::mutex mu_;
  std::vector<RunnerDef> runners_;
  std::map<std::string, JobAction> actions_;
  JobAction default_action_;
  int max_job_retries_ = 2;
};

}  // namespace benchpark::ci
