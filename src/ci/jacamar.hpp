// Jacamar CI (Section 3.3.2): a custom executor for GitLab CI runners in
// HPC environments.
//
// "Instead of running multiple CI jobs all under a single service user,
// Jacamar uses setuid to execute jobs as the user who triggered them. ...
// If a job is submitted by a user without an account at a participating
// site, the job will be run as the user who approved the pull request,
// further improving logging and audit checks."
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace benchpark::ci {

/// Site account directory: login -> uid at one HPC site.
class SiteAccounts {
public:
  void add(const std::string& login, int uid);
  [[nodiscard]] std::optional<int> uid_for(std::string_view login) const;
  [[nodiscard]] bool has(std::string_view login) const;

private:
  std::map<std::string, int, std::less<>> accounts_;
};

struct AuditEntry {
  std::string job;
  std::string site;
  std::string triggered_by;
  std::string ran_as;
  int uid = -1;
  bool downscoped = false;  // ran as approver instead of author
};

class Jacamar {
public:
  Jacamar(std::string site, SiteAccounts accounts);

  [[nodiscard]] const std::string& site() const { return site_; }

  /// Resolve the identity a job runs under: the triggering user when they
  /// hold a site account, else the approving admin (who must have one).
  /// Throws CiError when neither has an account — the job cannot run.
  struct Identity {
    std::string login;
    int uid = -1;
    bool downscoped = false;
  };
  [[nodiscard]] Identity resolve(const std::string& triggered_by,
                                 const std::string& approved_by) const;

  /// Record a job execution in the audit log. Thread-safe: runners at
  /// the same site may execute jobs concurrently (the service daemon's
  /// dispatch workers share Jacamar executors).
  void record(const std::string& job, const Identity& identity,
              const std::string& triggered_by);

  /// Stable reference; read it only while no job is executing (entries
  /// are appended, never erased, but the vector may reallocate during a
  /// concurrent record()).
  [[nodiscard]] const std::vector<AuditEntry>& audit_log() const {
    return audit_log_;
  }

private:
  std::string site_;
  SiteAccounts accounts_;
  std::mutex audit_mu_;
  std::vector<AuditEntry> audit_log_;
};

}  // namespace benchpark::ci
