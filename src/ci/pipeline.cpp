#include "src/ci/pipeline.hpp"

#include <algorithm>

#include "src/obs/trace.hpp"
#include "src/support/error.hpp"
#include "src/support/fault.hpp"
#include "src/support/string_util.hpp"

namespace benchpark::ci {

std::string_view pipeline_status_name(PipelineStatus s) {
  switch (s) {
    case PipelineStatus::success: return "success";
    case PipelineStatus::degraded: return "degraded";
    case PipelineStatus::failed: return "failed";
  }
  return "?";
}

PipelineDef PipelineDef::from_yaml(const yaml::Node& root) {
  PipelineDef def;
  if (!root.has("stages")) {
    throw CiError(".gitlab-ci.yml needs a 'stages:' list");
  }
  def.stages = root.at("stages").as_string_list();
  for (const auto& [key, body] : root.map()) {
    if (key == "stages" || key == "variables" || key == "default") continue;
    CiJobDef job;
    job.name = key;
    job.stage = body.at("stage").as_string_or(def.stages.front());
    if (std::find(def.stages.begin(), def.stages.end(), job.stage) ==
        def.stages.end()) {
      throw CiError("job '" + key + "' uses undeclared stage '" + job.stage +
                    "'");
    }
    if (body.has("tags")) job.tags = body.at("tags").as_string_list();
    if (body.has("script")) job.script = body.at("script").as_string_list();
    job.allow_failure = body.at("allow_failure").as_bool_or(false);
    def.jobs.push_back(std::move(job));
  }
  return def;
}

std::vector<const CiJobDef*> PipelineDef::jobs_in_stage(
    std::string_view stage) const {
  std::vector<const CiJobDef*> out;
  for (const auto& job : jobs) {
    if (job.stage == stage) out.push_back(&job);
  }
  return out;
}

bool RunnerDef::matches(const std::vector<std::string>& wanted) const {
  return std::all_of(wanted.begin(), wanted.end(), [&](const std::string& t) {
    return std::find(tags.begin(), tags.end(), t) != tags.end();
  });
}

const JobResultRecord* PipelineResult::job(std::string_view name) const {
  for (const auto& j : jobs) {
    if (j.name == name) return &j;
  }
  return nullptr;
}

void PipelineEngine::register_runner(RunnerDef runner) {
  if (!runner.executor) throw CiError("runner needs a jacamar executor");
  std::lock_guard<std::mutex> lock(mu_);
  runners_.push_back(std::move(runner));
}

void PipelineEngine::set_default_action(JobAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  default_action_ = std::move(action);
}

void PipelineEngine::set_action(const std::string& job_name,
                                JobAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  actions_[job_name] = std::move(action);
}

PipelineResult PipelineEngine::run(const PipelineDef& def,
                                   const std::string& commit_sha,
                                   const std::string& triggered_by,
                                   const std::string& approved_by) {
  // Snapshot the configuration so concurrent run() calls (and late
  // register_runner/set_action calls) never race on the tables. Runner
  // executors are shared_ptrs — the underlying Jacamar stays shared and
  // serializes its own audit log.
  std::vector<RunnerDef> runners;
  std::map<std::string, JobAction> actions;
  JobAction default_action;
  int max_job_retries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    runners = runners_;
    actions = actions_;
    default_action = default_action_;
    max_job_retries = max_job_retries_;
  }

  PipelineResult result;
  bool pipeline_failed = false;
  bool pipeline_degraded = false;

  auto& collector = obs::TraceCollector::global();
  obs::ScopedSpan pipeline_span(collector, "pipeline", "ci");
  if (pipeline_span.active()) {
    pipeline_span.annotate("commit", commit_sha);
    pipeline_span.annotate("triggered_by", triggered_by);
  }
  for (const auto& stage : def.stages) {
    obs::ScopedSpan stage_span(
        collector, collector.enabled() ? "stage:" + stage : std::string(),
        "ci");
    for (const auto* job : def.jobs_in_stage(stage)) {
      obs::ScopedSpan job_span(
          collector,
          collector.enabled() ? "job:" + job->name : std::string(), "ci");
      JobResultRecord record;
      record.name = job->name;
      record.stage = stage;

      if (pipeline_failed) {
        record.status = JobStatus::skipped;
        result.jobs.push_back(std::move(record));
        continue;
      }

      auto runner_it = std::find_if(
          runners.begin(), runners.end(),
          [&](const RunnerDef& r) { return r.matches(job->tags); });
      if (runner_it == runners.end()) {
        record.status = JobStatus::no_runner;
        record.log = "no runner with tags [" +
                     support::join(job->tags, ", ") + "]";
        pipeline_failed = true;
        result.jobs.push_back(std::move(record));
        continue;
      }

      Jacamar::Identity identity;
      try {
        identity = runner_it->executor->resolve(triggered_by, approved_by);
      } catch (const CiError& e) {
        record.status = JobStatus::failed;
        record.log = e.what();
        pipeline_failed = true;
        result.jobs.push_back(std::move(record));
        continue;
      }
      runner_it->executor->record(job->name, identity, triggered_by);
      record.runner_id = runner_it->id;
      record.ran_as = identity.login;

      JobContext context{job->name, runner_it->id,
                         runner_it->executor->site(), identity, commit_sha};
      const JobAction* action = nullptr;
      if (auto it = actions.find(job->name); it != actions.end()) {
        action = &it->second;
      } else if (default_action) {
        action = &default_action;
      }

      std::string script_log;
      for (const auto& line : job->script) {
        script_log += "$ " + line + "\n";
      }
      // Every job passes through the "ci.job" fault site (keyed by job
      // name). Transient failures — injected or thrown by the action —
      // are retried up to max_job_retries_ times; a job that needed a
      // retry degrades the pipeline instead of failing it.
      JobOutcome outcome;
      const int max_attempts = 1 + std::max(0, max_job_retries);
      for (int attempt = 1;; ++attempt) {
        record.attempts = attempt;
        try {
          support::fault_hit("ci.job", job->name,
                             static_cast<std::uint64_t>(attempt));
          outcome = action ? (*action)(context) : JobOutcome{};
          break;
        } catch (const TransientError& e) {
          if (attempt >= max_attempts) {
            outcome.success = false;
            outcome.log = "job failed after " + std::to_string(attempt) +
                          " attempts: " + e.what();
            break;
          }
          script_log += "[retry] attempt " + std::to_string(attempt) +
                        " failed (" + e.what() + ")\n";
        } catch (const std::exception& e) {
          outcome.success = false;
          outcome.log = std::string("job raised: ") + e.what();
          break;
        }
      }
      record.log = script_log + outcome.log;
      record.status = outcome.success ? JobStatus::success : JobStatus::failed;
      if (job_span.active()) {
        job_span.annotate("status", outcome.success ? "success" : "failed");
        job_span.annotate("attempts", std::to_string(record.attempts));
      }
      if (record.status == JobStatus::success && record.attempts > 1) {
        pipeline_degraded = true;
      }

      if (record.status == JobStatus::failed) {
        if (job->allow_failure) {
          pipeline_degraded = true;
        } else {
          pipeline_failed = true;
        }
      }
      result.jobs.push_back(std::move(record));
    }
  }
  result.status = pipeline_failed ? PipelineStatus::failed
                  : pipeline_degraded ? PipelineStatus::degraded
                                      : PipelineStatus::success;
  result.success = !pipeline_failed;
  return result;
}

}  // namespace benchpark::ci
