#include "src/ci/jacamar.hpp"

#include "src/support/error.hpp"

namespace benchpark::ci {

void SiteAccounts::add(const std::string& login, int uid) {
  accounts_[login] = uid;
}

std::optional<int> SiteAccounts::uid_for(std::string_view login) const {
  auto it = accounts_.find(login);
  if (it == accounts_.end()) return std::nullopt;
  return it->second;
}

bool SiteAccounts::has(std::string_view login) const {
  return accounts_.find(login) != accounts_.end();
}

Jacamar::Jacamar(std::string site, SiteAccounts accounts)
    : site_(std::move(site)), accounts_(std::move(accounts)) {}

Jacamar::Identity Jacamar::resolve(const std::string& triggered_by,
                                   const std::string& approved_by) const {
  if (auto uid = accounts_.uid_for(triggered_by)) {
    return {triggered_by, *uid, false};
  }
  if (!approved_by.empty()) {
    if (auto uid = accounts_.uid_for(approved_by)) {
      return {approved_by, *uid, true};
    }
  }
  throw CiError("jacamar@" + site_ + ": neither triggering user '" +
                triggered_by + "' nor approver '" + approved_by +
                "' has an account at this site");
}

void Jacamar::record(const std::string& job, const Identity& identity,
                     const std::string& triggered_by) {
  std::lock_guard<std::mutex> lock(audit_mu_);
  audit_log_.push_back({job, site_, triggered_by, identity.login,
                        identity.uid, identity.downscoped});
}

}  // namespace benchpark::ci
