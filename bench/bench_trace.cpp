// Guards the observability layer's zero-cost promise: with tracing
// disabled (the default — BENCHPARK_TRACE unset), every instrumentation
// site collapses to one relaxed atomic load. The disabled benchmarks
// below must stay under ~5 ns/op; the enabled variants document what a
// traced run pays so regressions in either direction are visible in the
// CI bench-smoke JSON.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/obs/trace.hpp"

namespace {

using namespace benchpark;

// --- disabled path (the hot production configuration) ----------------

void BM_DisabledScopedSpan(benchmark::State& state) {
  obs::TraceCollector collector;  // disabled by construction
  for (auto _ : state) {
    obs::ScopedSpan span(collector, "pkg:zlib", "install");
    benchpark_bench::keep(span.active());
  }
  state.SetLabel(collector.event_count() == 0 ? "zero-events"
                                              : "LEAKED-EVENTS");
}
BENCHMARK(BM_DisabledScopedSpan);

void BM_DisabledCounterAdd(benchmark::State& state) {
  obs::TraceCollector collector;
  for (auto _ : state) {
    collector.counter_add("buildcache.hits");
  }
  benchpark_bench::keep(collector.event_count());
}
BENCHMARK(BM_DisabledCounterAdd);

void BM_DisabledEmitSpan(benchmark::State& state) {
  obs::TraceCollector collector;
  for (auto _ : state) {
    collector.emit_span("attempt", "install", 1.0);
  }
  benchpark_bench::keep(collector.event_count());
}
BENCHMARK(BM_DisabledEmitSpan);

void BM_DisabledEnabledCheck(benchmark::State& state) {
  obs::TraceCollector collector;
  for (auto _ : state) {
    benchpark_bench::keep(collector.enabled());
  }
}
BENCHMARK(BM_DisabledEnabledCheck);

// --- enabled path (what a traced run pays) ---------------------------

void BM_EnabledScopedSpan(benchmark::State& state) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  for (auto _ : state) {
    obs::ScopedSpan span(collector, "pkg:zlib", "install");
    benchpark_bench::keep(span.active());
  }
  state.counters["events"] =
      static_cast<double>(collector.event_count());
}
BENCHMARK(BM_EnabledScopedSpan);

void BM_EnabledCounterAdd(benchmark::State& state) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  for (auto _ : state) {
    collector.counter_add("buildcache.hits");
  }
}
BENCHMARK(BM_EnabledCounterAdd);

void BM_EnabledNestedSpans(benchmark::State& state) {
  obs::TraceCollector collector;
  collector.set_enabled(true);
  for (auto _ : state) {
    obs::ScopedSpan outer(collector, "outer", "bench");
    obs::ScopedSpan inner(collector, "inner", "bench");
    benchpark_bench::keep(inner.active());
  }
}
BENCHMARK(BM_EnabledNestedSpans);

}  // namespace

BENCHMARK_MAIN();
