// Lock-free hot-path benchmarks backing the BENCH_hotpath.json CI gate:
// warm cache hit-path throughput at 1/8/16 threads for the RCU snapshot
// design vs. an inline mutex-per-shard baseline (the pre-RCU layout), and
// heap allocations per warm template expansion (gated to zero).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/ramble/expansion.hpp"
#include "src/support/arena.hpp"
#include "src/support/hash.hpp"

#include "bench_util.hpp"

// ----------------------------------------------------- counting allocator
// Same technique as tests/test_hotpath.cpp: global new/delete overrides
// for this binary, armed only around the measured expansion loop.

namespace {
std::atomic<std::size_t> g_allocations{0};
std::atomic<bool> g_count_allocations{false};

void* counted_alloc(std::size_t size) {
  if (g_count_allocations.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, std::align_val_t) {
  return counted_alloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }

namespace {

namespace ramble = benchpark::ramble;
namespace support = benchpark::support;

constexpr int kKeys = 64;

std::vector<std::string> template_keys() {
  std::vector<std::string> keys;
  keys.reserve(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back("srun -N {n_nodes} -n {n_ranks} ./exe-" +
                   std::to_string(i) + " --size {size}");
  }
  return keys;
}

// The pre-RCU shard layout: lookups take the shard mutex. This is the
// baseline the >=2x 16-thread gate compares the snapshot design against.
class MutexShardedTemplateCache {
public:
  std::shared_ptr<const ramble::CompiledTemplate> get(std::string_view text) {
    Shard& shard = shards_[support::TransparentStringHash{}(text) % kShards];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(text);
      if (it != shard.map.end()) return it->second;
    }
    auto compiled = std::make_shared<const ramble::CompiledTemplate>(text);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.emplace(std::string(text), compiled).first->second;
  }

private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string,
                       std::shared_ptr<const ramble::CompiledTemplate>,
                       support::TransparentStringHash, std::equal_to<>>
        map;
  };
  Shard shards_[kShards];
};

// --------------------------------------------- hit-path throughput gates

ramble::TemplateCache& lockfree_cache() {
  static ramble::TemplateCache cache;
  return cache;
}

MutexShardedTemplateCache& mutex_cache() {
  static MutexShardedTemplateCache cache;
  return cache;
}

const std::vector<std::string>& warm_keys() {
  static const std::vector<std::string> keys = [] {
    auto k = template_keys();
    for (const auto& key : k) {
      benchpark_bench::keep(lockfree_cache().get(key));
      benchpark_bench::keep(mutex_cache().get(key));
    }
    return k;
  }();
  return keys;
}

// Every thread hammers the same hot key — the realistic shape (a matrix
// expansion hits one execute template for every experiment) and the one
// that exposes shard-mutex serialization: all threads funnel into one
// shard, so the baseline's critical section is the bottleneck while the
// snapshot design's readers never exclude each other.

void BM_HitPathLockFree(benchmark::State& state) {
  const std::string& key = warm_keys().front();
  for (auto _ : state) {
    benchpark_bench::keep(lockfree_cache().get(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HitPathLockFree)
    ->Threads(1)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

void BM_HitPathMutexBaseline(benchmark::State& state) {
  const std::string& key = warm_keys().front();
  for (auto _ : state) {
    benchpark_bench::keep(mutex_cache().get(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HitPathMutexBaseline)
    ->Threads(1)
    ->Threads(8)
    ->Threads(16)
    ->UseRealTime();

// ---------------------------------------- allocations per warm expansion

void BM_ExpansionAllocations(benchmark::State& state) {
  ramble::VariableMap vars{
      {"n_nodes", "4"},
      {"processes_per_node", "8"},
      {"n_ranks", "{processes_per_node} * {n_nodes}"},
      {"size", "1048576"},
  };
  auto tmpl = lockfree_cache().get(warm_keys().front());
  support::Arena arena;
  std::string out;
  for (int i = 0; i < 3; ++i) {
    arena.reset();
    out.clear();
    tmpl->expand_into(out, vars, true, arena);
  }

  g_allocations.store(0, std::memory_order_relaxed);
  g_count_allocations.store(true, std::memory_order_relaxed);
  std::size_t expansions = 0;
  for (auto _ : state) {
    arena.reset();
    out.clear();
    tmpl->expand_into(out, vars, true, arena);
    ++expansions;
  }
  g_count_allocations.store(false, std::memory_order_relaxed);

  state.counters["allocs_per_expansion"] =
      expansions == 0 ? 0.0
                      : static_cast<double>(
                            g_allocations.load(std::memory_order_relaxed)) /
                            static_cast<double>(expansions);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpansionAllocations);

}  // namespace

BENCHMARK_MAIN();
