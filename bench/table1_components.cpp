// Regenerates Table 1: "Components of Benchpark, a collaborative
// continuous benchmark suite."
//
// The table is rendered from the live component registry and validated
// against the implementation (every named artifact must exist), so this
// binary fails loudly if the code drifts from the paper's design matrix.
#include <cstdio>
#include <iostream>

#include "src/core/components.hpp"
#include "src/pkg/repo.hpp"
#include "src/ramble/application.hpp"
#include "src/system/system.hpp"

int main() {
  using namespace benchpark;

  std::cout << "Table 1: Components of Benchpark, a collaborative "
               "continuous benchmark suite\n\n";
  std::cout << core::render_table1().render();

  core::validate_component_registry();
  std::cout << "\ncomponent registry validated against the live "
               "implementation:\n";
  std::printf("  benchmark-specific : %zu applications with both halves "
              "(package.py + application.py)\n",
              ramble::ApplicationRegistry::instance().names().size());
  std::printf("  system-specific    : %zu systems with config scopes + "
              "variables.yaml\n",
              system::SystemRegistry::instance().names().size());
  std::printf("  package repo       : %zu recipes in the builtin repo\n",
              pkg::default_repo_stack().package_names().size());
  return 0;
}
