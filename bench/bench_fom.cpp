// FOM extraction throughput: `ramble workspace analyze` applies the
// Figure 8 regexes to every experiment's output; this measures that cost
// against realistic and large outputs.
#include <benchmark/benchmark.h>

#include "src/analysis/fom.hpp"
#include "src/analysis/metrics_db.hpp"
#include "src/ramble/application.hpp"

namespace {

namespace an = benchpark::analysis;

std::string saxpy_output_text(int noise_lines) {
  std::string out;
  for (int i = 0; i < noise_lines; ++i) {
    out += "srun: job step " + std::to_string(i) + " launched\n";
  }
  out += "saxpy: problem size n=1024 threads=2\n";
  out += "Kernel elapsed: 0.000123 s\n";
  out += "Kernel GFLOP/s: 16.5\n";
  out += "Kernel done\n";
  return out;
}

void BM_ExtractSaxpyFoms(benchmark::State& state) {
  const auto& app =
      benchpark::ramble::ApplicationRegistry::instance().get("saxpy");
  auto output = saxpy_output_text(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(an::extract_foms(app.foms(), output));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(output.size()));
}
BENCHMARK(BM_ExtractSaxpyFoms)->Arg(0)->Arg(100)->Arg(10000);

void BM_SuccessCriteria(benchmark::State& state) {
  const auto& app =
      benchpark::ramble::ApplicationRegistry::instance().get("amg2023");
  std::string output =
      "AMG solve on 1024^2 grid, 10 levels\niterations: 10\n"
      "Figure of Merit (FOM_Setup): 4.2e6\n"
      "Figure of Merit (FOM_Solve): 3.1e7\nAMG converged\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        an::evaluate_success(app.success_criteria_list(), output));
  }
}
BENCHMARK(BM_SuccessCriteria);

void BM_MetricsDbInsertQuery(benchmark::State& state) {
  for (auto _ : state) {
    an::MetricsDb db;
    for (int i = 0; i < 1000; ++i) {
      an::ResultRow row;
      row.benchmark = i % 2 ? "saxpy" : "amg2023";
      row.system = i % 3 ? "cts1" : "ats2";
      row.experiment = "e" + std::to_string(i);
      row.fom_name = "elapsed";
      row.value = i * 0.001;
      db.insert(row);
    }
    benchmark::DoNotOptimize(
        db.aggregate({.benchmark = "saxpy", .system = "cts1"}));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MetricsDbInsertQuery);

}  // namespace

BENCHMARK_MAIN();
