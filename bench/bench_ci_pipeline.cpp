// CI-layer benchmarks: Hubcast evaluation/mirroring cost and pipeline
// engine throughput — the overheads the Figure 6 loop adds on top of the
// benchmark work itself.
#include <benchmark/benchmark.h>

#include "src/ci/git.hpp"
#include "src/ci/hubcast.hpp"
#include "src/ci/pipeline.hpp"
#include "src/yaml/parser.hpp"

namespace {

namespace ci = benchpark::ci;

struct Fixture {
  ci::GitHost github{"github"};
  ci::GitHost gitlab{"gitlab"};
  std::uint64_t pr;

  Fixture() {
    github.create_repo("llnl", "benchpark")
        .commit("main", "olga", "init", {{"a", "1"}});
    gitlab.create_repo("llnl", "benchpark")
        .commit("main", "hubcast", "init", {{"a", "1"}});
    github.fork("llnl/benchpark", "student");
    github.repo("student/benchpark")
        .commit("change", "student", "update", {{"a", "2"}});
    pr = github.open_pr("update", "student", "student/benchpark", "change",
                        "llnl/benchpark");
    github.approve_pr(pr, "site-admin");
  }

  ci::Hubcast hubcast() {
    ci::SecurityPolicy policy;
    policy.admins = {"site-admin"};
    return ci::Hubcast(&github, &gitlab, "llnl/benchpark", policy);
  }
};

void BM_HubcastEvaluate(benchmark::State& state) {
  Fixture fx;
  auto hubcast = fx.hubcast();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hubcast.evaluate(fx.pr));
  }
}
BENCHMARK(BM_HubcastEvaluate);

void BM_HubcastMirror(benchmark::State& state) {
  Fixture fx;
  auto hubcast = fx.hubcast();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hubcast.try_mirror_pr(fx.pr));
  }
}
BENCHMARK(BM_HubcastMirror);

void BM_PipelineEngine(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  std::string yaml = "stages: [bench]\n";
  for (int i = 0; i < jobs; ++i) {
    yaml += "job" + std::to_string(i) + ":\n  stage: bench\n  tags: [x]\n";
  }
  auto def = ci::PipelineDef::from_yaml(benchpark::yaml::parse(yaml));
  ci::SiteAccounts accounts;
  accounts.add("olga", 1);
  ci::PipelineEngine engine;
  engine.register_runner(
      {"r", {"x"}, std::make_shared<ci::Jacamar>("llnl", accounts)});
  engine.set_default_action(
      [](const ci::JobContext&) { return ci::JobOutcome{true, ""}; });
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(def, "sha", "olga"));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * jobs);
}
BENCHMARK(BM_PipelineEngine)->Range(4, 256);

void BM_GitCommit(benchmark::State& state) {
  ci::GitHost host("github");
  auto& repo = host.create_repo("o", "r");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(repo.commit(
        "main", "user", "msg", {{"file" + std::to_string(i % 100), "x"}}));
    ++i;
  }
}
BENCHMARK(BM_GitCommit);

}  // namespace

BENCHMARK_MAIN();
