// Archspec benchmarks: detection and flag-resolution throughput — paid on
// every concretization and every generated build recipe (Sec. 3.1.3).
#include <benchmark/benchmark.h>

#include "src/archspec/microarch.hpp"

namespace {

namespace arch = benchpark::archspec;
using benchpark::spec::Version;

void BM_DetectFromCpuinfo(benchmark::State& state) {
  std::string cpuinfo =
      "processor : 0\nvendor_id : GenuineIntel\n"
      "model name : Intel(R) Xeon(R) CPU E5-2695 v4 @ 2.10GHz\n"
      "flags : fpu vme de pse tsc msr pae mce cx8 sse sse2 ssse3 sse4_1 "
      "sse4_2 popcnt avx avx2 fma bmi2 adx rdseed\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::detect_from_cpuinfo(cpuinfo));
  }
}
BENCHMARK(BM_DetectFromCpuinfo);

void BM_OptimizationFlags(benchmark::State& state) {
  Version gcc("12.1.1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::optimization_flags("gcc", gcc, "zen3"));
    benchmark::DoNotOptimize(
        arch::optimization_flags("gcc", gcc, "power9le"));
    benchmark::DoNotOptimize(
        arch::optimization_flags("intel", Version("2021.6.0"),
                                 "cascadelake"));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_OptimizationFlags);

void BM_CompatibilityQuery(benchmark::State& state) {
  const auto& db = arch::MicroarchDatabase::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.compatible("zen4", "x86_64_v3"));
    benchmark::DoNotOptimize(db.compatible("broadwell", "skylake_avx512"));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CompatibilityQuery);

void BM_AncestorWalk(benchmark::State& state) {
  const auto& db = arch::MicroarchDatabase::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.ancestors("sapphirerapids"));
  }
}
BENCHMARK(BM_AncestorWalk);

}  // namespace

BENCHMARK_MAIN();
