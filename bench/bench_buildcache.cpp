// Binary-cache ablation (Section 7.2): "the Spack build pipeline and
// rolling binary cache makes packages available to all Spack users ...
// focusing the time to build applications on only the dependencies with
// special requirements."
//
// Measures real engine time for cold/warm installs and reports the
// modeled build-time saving (simulated seconds) as counters.
#include <benchmark/benchmark.h>

#include "src/buildcache/binary_cache.hpp"
#include "src/concretizer/concretizer.hpp"
#include "src/env/environment.hpp"
#include "src/install/installer.hpp"
#include "src/pkg/repo.hpp"
#include "src/system/system.hpp"

namespace {

using namespace benchpark;

/// One root through the unified API, legacy semantics (fresh context,
/// serial, no memo cache).
spec::Spec concretize1(const concretizer::Concretizer& c,
                       const std::string& text) {
  concretizer::ConcretizeRequest request;
  request.roots = {spec::Spec::parse(text)};
  request.unify = false;
  request.use_cache = false;
  request.threads = 1;
  return std::move(c.concretize_all(request).specs.front());
}

env::Environment concretized_env() {
  const auto& cts1 = system::SystemRegistry::instance().get("cts1");
  concretizer::Concretizer cz(pkg::default_repo_stack(), cts1.config);
  env::Environment environment;
  environment.add("amg2023+caliper");
  environment.add("saxpy+openmp");
  environment.concretize(cz);
  return environment;
}

void BM_ColdInstall(benchmark::State& state) {
  auto environment = concretized_env();
  double simulated = 0;
  for (auto _ : state) {
    buildcache::BinaryCache cache;
    install::InstallTree tree;
    install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
    auto report = environment.install_all(installer);
    simulated = report.total_simulated_seconds;
    benchmark::DoNotOptimize(report);
  }
  state.counters["modeled_build_s"] = simulated;
}
BENCHMARK(BM_ColdInstall);

void BM_WarmCacheInstall(benchmark::State& state) {
  auto environment = concretized_env();
  buildcache::BinaryCache cache;  // warmed once, shared across iterations
  {
    install::InstallTree tree;
    install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
    (void)environment.install_all(installer);
  }
  double simulated = 0;
  for (auto _ : state) {
    install::InstallTree tree;  // fresh site, warm mirror
    install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
    auto report = environment.install_all(installer);
    simulated = report.total_simulated_seconds;
    benchmark::DoNotOptimize(report);
  }
  state.counters["modeled_fetch_s"] = simulated;
  state.counters["cache_hits"] = static_cast<double>(cache.stats().hits);
}
BENCHMARK(BM_WarmCacheInstall);

// Wavefront DAG install (the tentpole engine): Arg is engine_threads.
// Compare /threads:1 vs /threads:4 for the real engine wall-clock; the
// counters report the modeled build time -- serial sum vs critical path
// (the wavefront engine's modeled wall-clock with unbounded workers).
void BM_ParallelDagInstall(benchmark::State& state) {
  const auto& cts1 = system::SystemRegistry::instance().get("cts1");
  concretizer::Concretizer cz(pkg::default_repo_stack(), cts1.config);
  auto spec = concretize1(cz, "amg2023+caliper");
  install::InstallOptions options;
  options.engine_threads = static_cast<int>(state.range(0));
  double serial_s = 0, critical_s = 0;
  for (auto _ : state) {
    buildcache::BinaryCache cache;
    install::InstallTree tree;
    install::Installer installer(pkg::default_repo_stack(), &tree, &cache);
    auto report = installer.install(spec, options);
    serial_s = report.total_simulated_seconds;
    critical_s = report.critical_path_seconds;
    benchmark::DoNotOptimize(report);
  }
  state.counters["modeled_serial_s"] = serial_s;
  state.counters["modeled_critical_path_s"] = critical_s;
  state.counters["modeled_speedup"] = serial_s / critical_s;
}
BENCHMARK(BM_ParallelDagInstall)->Arg(1)->Arg(4);

void BM_CacheLookup(benchmark::State& state) {
  const auto& cts1 = system::SystemRegistry::instance().get("cts1");
  concretizer::Concretizer cz(pkg::default_repo_stack(), cts1.config);
  auto spec = concretize1(cz, "hypre");
  buildcache::BinaryCache cache;
  cache.push(spec, 50 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.fetch(spec));
  }
}
BENCHMARK(BM_CacheLookup);

}  // namespace

BENCHMARK_MAIN();
