// Real STREAM kernels on the host plus the modeled per-system bandwidths
// the simulated systems report (cts1 154 GB/s, ats2 170, ats4 205).
#include <benchmark/benchmark.h>

#include "src/benchmarks/stream.hpp"
#include "src/runtime/simexec.hpp"
#include "src/system/system.hpp"

namespace {

namespace bm = benchpark::benchmarks;

void BM_StreamTriad(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.5);
  const double scalar = 3.0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::stream_triad_bytes(n)));
}
BENCHMARK(BM_StreamTriad)->Range(1 << 12, 1 << 22);

void BM_StreamTriadVectorized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.5);
  const double scalar = 3.0;
  for (auto _ : state) {
    bm::stream_triad(a.data(), b.data(), c.data(), scalar, n);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::stream_triad_bytes(n)));
}
BENCHMARK(BM_StreamTriadVectorized)->Arg(1 << 16)->Arg(1 << 22);

void BM_StreamTriadScalarReference(benchmark::State& state) {
  // Vectorization-disabled twin; the SIMD bandwidth gain is
  // BM_StreamTriadVectorized / this, and the run aborts on any
  // elementwise divergence (FOM parity check).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n, 1.0), av(n, 1.0), b(n, 2.0), c(n, 0.5);
  const double scalar = 3.0;
  bm::stream_triad(av.data(), b.data(), c.data(), scalar, n);
  for (auto _ : state) {
    bm::stream_triad_scalar(a.data(), b.data(), c.data(), scalar, n);
    benchmark::DoNotOptimize(a.data());
    benchmark::ClobberMemory();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != av[i]) {
      state.SkipWithError("scalar/vectorized triad parity failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::stream_triad_bytes(n)));
}
BENCHMARK(BM_StreamTriadScalarReference)->Arg(1 << 16)->Arg(1 << 22);

void BM_StreamFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  double triad = 0;
  for (auto _ : state) {
    auto result = bm::run_stream(n, 1, 1);
    triad = result.bandwidth_gbs[3];
    benchmark::DoNotOptimize(result);
  }
  state.counters["triad_GBs"] = triad;
}
BENCHMARK(BM_StreamFull)->Arg(1 << 16)->Arg(1 << 20);

void BM_StreamModeledPerSystem(benchmark::State& state) {
  // Simulated per-system STREAM: which system has the fastest memory?
  const char* systems[] = {"cts1", "ats2", "ats4"};
  const char* name = systems[state.range(0)];
  const auto& system =
      benchpark::system::SystemRegistry::instance().get(name);
  benchpark::runtime::RunParams params;
  params.app = "stream";
  params.n = 10000000;
  params.n_threads = 16;
  double triad = 0;
  for (auto _ : state) {
    auto outcome = benchpark::runtime::run_simulated(system, params);
    auto pos = outcome.output.find("Triad: ");
    triad = std::stod(outcome.output.substr(pos + 7));
    benchmark::DoNotOptimize(outcome);
  }
  state.SetLabel(name);
  state.counters["triad_GBs"] = triad;
}
BENCHMARK(BM_StreamModeledPerSystem)->DenseRange(0, 2, 1);

}  // namespace

BENCHMARK_MAIN();
