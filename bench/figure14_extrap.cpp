// Regenerates Figure 14: "Extra-P model for performance of a function in
// one of our applications. Red dots represent performance measurements of
// an MPI_Bcast function on the CTS architecture. The blue line is a
// scaling function computed by Extra-P from the performance measurements."
//
// The paper's fitted model is
//     -0.6355857931034596 + 0.04660217702356169 * p^(1)
// over nprocs up to ~3456, i.e. the *aggregate* time an application spends
// in MPI_Bcast grows linearly with process count. We reproduce the
// pipeline: the CTS collective model supplies per-call Bcast costs, an
// application run accumulates 1M broadcasts (Caliper-annotated), repeated
// measurements across the cts1 node counts feed Extra-P, and the fitted
// model is printed in Extra-P's own format. Absolute coefficients depend
// on the modeled fabric; the *shape* must be linear-dominated (p^1).
#include <cstdio>
#include <iostream>

#include "src/analysis/extrap.hpp"
#include "src/perf/caliper.hpp"
#include "src/support/rng.hpp"
#include "src/system/perf_model.hpp"
#include "src/system/system.hpp"

int main() {
  using namespace benchpark;

  const auto& cts = system::SystemRegistry::instance().get("cts1");
  system::PerfModel model(cts);

  // The measured application: 1e6 small broadcasts per run (a config
  // broadcast in an iteration loop — the pattern behind Figure 14).
  constexpr double kCallsPerRun = 1.0e6;
  constexpr std::uint64_t kMessageBytes = 8;

  std::vector<analysis::Measurement> measurements;
  support::Rng rng(14);  // reproducible measurement noise
  std::cout << "measurements: total MPI_Bcast time on CTS (5 runs/point)\n";
  std::cout << "  nprocs   total_time_mean (s)\n";
  perf::Caliper::reset();
  for (int nprocs : {64, 128, 256, 512, 1024, 1728, 2304, 3456}) {
    double sum = 0;
    for (int run = 0; run < 5; ++run) {
      double per_call = model.collective_seconds(
          system::Collective::bcast, nprocs, kMessageBytes);
      double total = per_call * kCallsPerRun *
                     rng.noise_factor(cts.noise_sigma);
      perf::Caliper::record("mpi/MPI_Bcast", total,
                            static_cast<std::uint64_t>(kCallsPerRun));
      measurements.push_back({static_cast<double>(nprocs), total});
      sum += total;
    }
    std::printf("  %6d   %.4f\n", nprocs, sum / 5);
  }

  auto fitted = analysis::fit_scaling_model(measurements);
  std::cout << "\nExtra-P model (CTS):\n  " << fitted.str() << "\n";
  std::cout << "  complexity: " << fitted.complexity()
            << "   adjusted R^2: " << fitted.r_squared << "\n";
  std::cout << "\npaper's Figure 14 model:\n"
               "  -0.6355857931034596 + 0.04660217702356169 * p^(1)\n";

  // The reproduction claim: linear-dominated growth with positive slope.
  bool linear = fitted.exponent == 1.0 && fitted.log_exponent == 0 &&
                fitted.coefficient > 0;
  std::cout << "\nshape check (exponent p^1, positive slope): "
            << (linear ? "PASS" : "FAIL") << "\n";

  std::cout << "\nmodel vs measurement at the paper's axis points:\n";
  std::cout << "  nprocs   model (s)\n";
  for (int p : {500, 1000, 1500, 2000, 2500, 3000, 3500}) {
    std::printf("  %6d   %.2f\n", p, fitted.evaluate(p));
  }
  return linear ? 0 : 1;
}
