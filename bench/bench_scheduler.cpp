// Scheduler benchmarks: submission/simulation throughput and the
// FIFO-vs-backfill makespan ablation (the design choice behind letting
// Ramble submit many small experiments to a busy machine).
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

#include "src/sched/scheduler.hpp"
#include "src/support/rng.hpp"

namespace {

namespace sched = benchpark::sched;

sched::BatchJob job(const std::string& name, int nodes, double runtime,
                    double limit) {
  sched::BatchJob j;
  j.name = name;
  j.user = "bench";
  j.nodes = nodes;
  j.ranks = nodes * 8;
  j.time_limit_seconds = limit;
  j.work = [runtime] { return sched::JobResult{runtime, true, "ok\n"}; };
  return j;
}

void BM_SchedulerThroughput(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sched::BatchScheduler scheduler(256, sched::Policy::fifo);
    for (int i = 0; i < jobs; ++i) {
      (void)scheduler.submit(job("j" + std::to_string(i), 1 + i % 8,
                                 60 + i % 120, 600));
    }
    scheduler.run_until_idle();
    benchmark::DoNotOptimize(scheduler.makespan());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * jobs);
}
BENCHMARK(BM_SchedulerThroughput)->Range(64, 4096);

void BM_PolicyMakespan(benchmark::State& state) {
  // Mixed workload: a few wide jobs plus many narrow backfill candidates.
  const auto policy = static_cast<sched::Policy>(state.range(0));
  double makespan = 0;
  double narrow_wait = 0;
  for (auto _ : state) {
    sched::BatchScheduler scheduler(64, policy);
    benchpark::support::Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      bool wide = (i % 10 == 0);
      int nodes = wide ? 48 : 1 + static_cast<int>(rng.below(4));
      double runtime = wide ? 600 : 30 + rng.uniform(0, 60);
      (void)scheduler.submit(
          job("j" + std::to_string(i), nodes, runtime, runtime * 1.1));
    }
    scheduler.run_until_idle();
    makespan = scheduler.makespan();
    double wait_sum = 0;
    int narrow = 0;
    for (const auto* record : scheduler.records()) {
      if (record->nodes < 48) {
        wait_sum += record->wait_time();
        ++narrow;
      }
    }
    narrow_wait = narrow ? wait_sum / narrow : 0;
    benchpark_bench::keep(makespan);
  }
  state.SetLabel(policy == sched::Policy::fifo ? "fifo" : "backfill");
  state.counters["makespan_s"] = makespan;
  // The backfill win: narrow jobs slide into the holes wide jobs leave,
  // instead of queueing behind them (mean wait drops by orders).
  state.counters["narrow_wait_s"] = narrow_wait;
}
BENCHMARK(BM_PolicyMakespan)->Arg(0)->Arg(1);

void BM_ScriptParse(benchmark::State& state) {
  const std::string script =
      "#!/bin/bash\n#SBATCH -N 2\n#SBATCH -n 16\n#SBATCH -t 120:00\n"
      "cd /ws\nsrun -N 2 -n 16 saxpy -n 1024\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::parse_batch_script(
        script, benchpark::system::SchedulerKind::slurm));
  }
}
BENCHMARK(BM_ScriptParse);

}  // namespace

BENCHMARK_MAIN();
