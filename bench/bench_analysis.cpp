// Historical-analytics benchmarks: detector scan throughput over long
// synthetic FOM series, bisection replay counts across wide config
// histories (the ceil(log2 N) budget the attribution contract promises),
// and end-to-end run_analysis report rendering. CI publishes these as
// BENCH_analysis.json next to the analytics-regression gate.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/analysis.hpp"
#include "src/analysis/bisect.hpp"
#include "src/analysis/detect.hpp"
#include "src/analysis/history.hpp"

#include "bench_util.hpp"

namespace {

using namespace benchpark;
using benchpark_bench::keep;

// Deterministic "noisy" series: a seeded LCG keeps every iteration (and
// every machine) scanning byte-identical data.
std::vector<analysis::HistorySample> synthetic_series(std::size_t n,
                                                      std::size_t configs,
                                                      std::size_t step_at) {
  std::vector<analysis::HistorySample> samples;
  samples.reserve(n);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double noise = static_cast<double>(state >> 40) / (1 << 24);
    analysis::HistorySample s;
    s.sequence = i + 1;
    s.value = (i >= step_at ? 130.0 : 100.0) + noise;  // noise in [0, 1)
    s.units = "s";
    s.config_hash = "cfg" + std::to_string(i * configs / n);
    samples.push_back(std::move(s));
  }
  return samples;
}

// Full-series change-point scan; counter = samples judged per second.
void BM_DetectorScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto samples = synthetic_series(n, 16, n / 2);
  analysis::DetectorConfig config;
  std::size_t points = 0;
  for (auto _ : state) {
    auto found = analysis::scan(samples, config);
    points = found.size();
    keep(points);
  }
  state.counters["samples_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["change_points"] = static_cast<double>(points);
}
BENCHMARK(BM_DetectorScan)->Arg(256)->Arg(1024)->Arg(8192);

// Bisection across wide config axes. The replays counter is the gate:
// it must stay within ceil(log2(configs)) however wide the history gets.
void BM_BisectFirstBad(benchmark::State& state) {
  const auto configs = static_cast<std::size_t>(state.range(0));
  auto samples = synthetic_series(configs * 4, configs, configs * 2);
  auto spans = analysis::config_spans(samples);
  std::size_t replays = 0;
  for (auto _ : state) {
    auto result =
        analysis::bisect_first_bad(spans, 0, spans.size() - 1, {});
    replays = result.replays;
    keep(result.first_bad_hash);
  }
  state.counters["replays"] = static_cast<double>(replays);
  state.counters["log2_budget"] =
      std::ceil(std::log2(static_cast<double>(configs)));
}
BENCHMARK(BM_BisectFirstBad)->Arg(64)->Arg(256)->Arg(1024);

// End-to-end façade: history source -> detect -> bisect -> all three
// renderers, the exact path the CLI `analyze` command drives.
void BM_RunAnalysisReports(benchmark::State& state) {
  const auto series_count = static_cast<std::size_t>(state.range(0));
  analysis::FomHistory history;
  for (std::size_t k = 0; k < series_count; ++k) {
    analysis::SeriesKey key{"bench" + std::to_string(k), "cts1", "exp",
                            "runtime_seconds"};
    for (const auto& s : synthetic_series(128, 8, 96)) {
      history.append(key, s.value, s.units, s.config_hash, s.success);
    }
  }
  analysis::AnalysisRequest request;
  request.history = &history;
  request.render_text = true;
  request.render_html = true;
  request.render_json = true;
  std::size_t json_bytes = 0;
  for (auto _ : state) {
    auto result = analysis::run_analysis(request);
    json_bytes = result.json.size();
    keep(result.stats.regressions);
  }
  state.counters["series_per_s"] = benchmark::Counter(
      static_cast<double>(series_count) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["json_bytes"] = static_cast<double>(json_bytes);
}
BENCHMARK(BM_RunAnalysisReports)->Arg(4)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
