// YAML subset parser/emitter throughput on the paper's config documents.
#include <benchmark/benchmark.h>

#include <cstring>

#include "src/yaml/emitter.hpp"
#include "src/yaml/parser.hpp"

namespace {

const char* kFigure10 =
    "ramble:\n"
    "  include:\n"
    "  - ./configs/spack.yaml\n"
    "  - ./configs/variables.yaml\n"
    "  config:\n"
    "    deprecated: true\n"
    "    spack_flags:\n"
    "      install: '--add --keep-stage'\n"
    "      concretize: '-U -f'\n"
    "  applications:\n"
    "    saxpy:\n"
    "      workloads:\n"
    "        problem:\n"
    "          env_vars:\n"
    "            set:\n"
    "              OMP_NUM_THREADS: '{n_threads}'\n"
    "          variables:\n"
    "            n_ranks: '8'\n"
    "          experiments:\n"
    "            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:\n"
    "              variables:\n"
    "                processes_per_node: ['8', '4']\n"
    "                n_nodes: ['1', '2']\n"
    "                n_threads: ['2', '4']\n"
    "                n: ['512', '1024']\n"
    "              matrices:\n"
    "              - size_threads:\n"
    "                - n\n"
    "                - n_threads\n"
    "  spack:\n"
    "    packages:\n"
    "      saxpy:\n"
    "        spack_spec: saxpy@1.0.0 +openmp\n"
    "        compiler: default-compiler\n"
    "    environments:\n"
    "      saxpy:\n"
    "        packages:\n"
    "        - default-mpi\n"
    "        - saxpy\n";

void BM_ParseFigure10(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchpark::yaml::parse(kFigure10));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(std::strlen(kFigure10)));
}
BENCHMARK(BM_ParseFigure10);

void BM_EmitFigure10(benchmark::State& state) {
  auto doc = benchpark::yaml::parse(kFigure10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchpark::yaml::emit(doc));
  }
}
BENCHMARK(BM_EmitFigure10);

void BM_RoundTripScaling(benchmark::State& state) {
  // Synthetic document with N top-level experiment entries.
  std::string doc = "experiments:\n";
  for (int i = 0; i < state.range(0); ++i) {
    doc += "  exp_" + std::to_string(i) + ":\n    variables:\n      n: '" +
           std::to_string(i) + "'\n      threads: ['1', '2', '4']\n";
  }
  for (auto _ : state) {
    auto parsed = benchpark::yaml::parse(doc);
    benchmark::DoNotOptimize(benchpark::yaml::emit(parsed));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RoundTripScaling)->Range(8, 512)->Complexity();

}  // namespace

BENCHMARK_MAIN();
