// The real AMG proxy (geometric multigrid Poisson solver): setup/solve
// FOMs across grid resolutions, demonstrating the h-independent
// convergence AMG benchmarks measure, plus the threaded smoother.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "src/benchmarks/multigrid.hpp"

namespace {

namespace bm = benchpark::benchmarks;

void BM_MultigridSolve(benchmark::State& state) {
  bm::MultigridOptions options;
  options.n = static_cast<std::size_t>(state.range(0));
  int cycles = 0;
  double fom = 0;
  for (auto _ : state) {
    auto result = bm::solve_poisson_multigrid(options);
    cycles = result.cycles;
    fom = result.solve_fom();
    benchmark::DoNotOptimize(result);
  }
  state.counters["cycles"] = cycles;
  state.counters["FOM_Solve"] = fom;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * state.range(0) * cycles);
}
BENCHMARK(BM_MultigridSolve)->Arg(31)->Arg(63)->Arg(127)->Arg(255)
    ->Unit(benchmark::kMillisecond);

void BM_MultigridThreaded(benchmark::State& state) {
  bm::MultigridOptions options;
  options.n = 255;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm::solve_poisson_multigrid(options));
  }
}
BENCHMARK(BM_MultigridThreaded)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MultigridSetupPhase(benchmark::State& state) {
  bm::MultigridOptions options;
  options.n = static_cast<std::size_t>(state.range(0));
  options.max_cycles = 0;  // setup only (hierarchy + RHS)
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm::solve_poisson_multigrid(options));
  }
}
BENCHMARK(BM_MultigridSetupPhase)->Arg(63)->Arg(255)
    ->Unit(benchmark::kMillisecond);

void BM_MultigridResidualRow(benchmark::State& state) {
  // Inner-loop kernel in isolation: vectorized (range(1)=1) vs scalar
  // reference (range(1)=0), with a parity check on stores and sum so the
  // reported speedup is apples-to-apples (FOM parity).
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool vectorized = state.range(1) == 1;
  const std::size_t stride = n + 2;
  std::vector<double> u(3 * stride, 1.25), f(3 * stride, 2.5);
  std::vector<double> r(3 * stride, 0.0), rv(3 * stride, 0.0);
  for (std::size_t i = 0; i < 3 * stride; ++i) {
    u[i] += 0.001 * static_cast<double>(i % 97);
  }
  const double inv_h2 = static_cast<double>((n + 1) * (n + 1));
  const double sum_v = bm::multigrid_residual_row(
      rv.data() + stride, u.data() + stride, f.data() + stride, n, stride,
      inv_h2);
  double sum = 0;
  for (auto _ : state) {
    sum = vectorized
              ? bm::multigrid_residual_row(r.data() + stride,
                                           u.data() + stride,
                                           f.data() + stride, n, stride,
                                           inv_h2)
              : bm::multigrid_residual_row_scalar(r.data() + stride,
                                                  u.data() + stride,
                                                  f.data() + stride, n,
                                                  stride, inv_h2);
    benchmark::DoNotOptimize(r.data());
    benchmark::ClobberMemory();
  }
  for (std::size_t j = 1; j <= n; ++j) {
    if (r[stride + j] != rv[stride + j]) {
      state.SkipWithError("scalar/vectorized residual parity failed");
      return;
    }
  }
  if (std::abs(sum - sum_v) > 1e-12 * std::abs(sum_v)) {
    state.SkipWithError("residual sum parity failed");
    return;
  }
  state.SetLabel(vectorized ? "vectorized" : "scalar");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_MultigridResidualRow)
    ->Args({255, 0})
    ->Args({255, 1})
    ->Args({4095, 0})
    ->Args({4095, 1});

}  // namespace

BENCHMARK_MAIN();
