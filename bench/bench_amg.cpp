// The real AMG proxy (geometric multigrid Poisson solver): setup/solve
// FOMs across grid resolutions, demonstrating the h-independent
// convergence AMG benchmarks measure, plus the threaded smoother.
#include <benchmark/benchmark.h>

#include "src/benchmarks/multigrid.hpp"

namespace {

namespace bm = benchpark::benchmarks;

void BM_MultigridSolve(benchmark::State& state) {
  bm::MultigridOptions options;
  options.n = static_cast<std::size_t>(state.range(0));
  int cycles = 0;
  double fom = 0;
  for (auto _ : state) {
    auto result = bm::solve_poisson_multigrid(options);
    cycles = result.cycles;
    fom = result.solve_fom();
    benchmark::DoNotOptimize(result);
  }
  state.counters["cycles"] = cycles;
  state.counters["FOM_Solve"] = fom;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * state.range(0) * cycles);
}
BENCHMARK(BM_MultigridSolve)->Arg(31)->Arg(63)->Arg(127)->Arg(255)
    ->Unit(benchmark::kMillisecond);

void BM_MultigridThreaded(benchmark::State& state) {
  bm::MultigridOptions options;
  options.n = 255;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm::solve_poisson_multigrid(options));
  }
}
BENCHMARK(BM_MultigridThreaded)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_MultigridSetupPhase(benchmark::State& state) {
  bm::MultigridOptions options;
  options.n = static_cast<std::size_t>(state.range(0));
  options.max_cycles = 0;  // setup only (hierarchy + RHS)
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm::solve_poisson_multigrid(options));
  }
}
BENCHMARK(BM_MultigridSetupPhase)->Arg(63)->Arg(255)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
