// The saxpy kernel itself (Figure 7), run for real on the host: the
// paper's problem sizes (512, 1024 from Figure 10) up to memory-bound
// sizes, serial and threaded — plus the modeled CPU-vs-GPU crossover on
// ats2 that motivates the cuda experiment variant.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

#include "src/benchmarks/saxpy.hpp"
#include "src/system/perf_model.hpp"
#include "src/system/system.hpp"

namespace {

namespace bm = benchpark::benchmarks;

void BM_SaxpyKernel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 1.0f), y(n, 2.0f), r(n);
  for (auto _ : state) {
    bm::saxpy_kernel(r.data(), x.data(), y.data(), n);
    benchmark::DoNotOptimize(r.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::saxpy_bytes(n)));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
// 512 and 1024 are the Figure 10 sweep; the tail is host-memory bound.
BENCHMARK(BM_SaxpyKernel)->Arg(512)->Arg(1024)->Range(1 << 12, 1 << 24);

void BM_SaxpyThreaded(benchmark::State& state) {
  const std::size_t n = 1 << 22;
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bm::run_saxpy(n, threads));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::saxpy_bytes(n)));
}
BENCHMARK(BM_SaxpyThreaded)->Arg(1)->Arg(2)->Arg(4);

void BM_SaxpyModeledCrossover(benchmark::State& state) {
  // Modeled CPU vs GPU time on ats2 as n grows: the GPU launch latency
  // loses below the crossover and wins above it.
  const auto& ats2 = benchpark::system::SystemRegistry::instance().get("ats2");
  benchpark::system::PerfModel model(ats2);
  const auto n = static_cast<std::size_t>(state.range(0));
  double cpu = 0, gpu = 0;
  for (auto _ : state) {
    cpu = model.cpu_kernel_seconds(bm::saxpy_flops(n), bm::saxpy_bytes(n),
                                   4, 10);
    gpu = model.gpu_kernel_seconds(bm::saxpy_flops(n), bm::saxpy_bytes(n),
                                   4);
    benchpark_bench::keep(cpu);
    benchpark_bench::keep(gpu);
  }
  state.counters["cpu_us"] = cpu * 1e6;
  state.counters["gpu_us"] = gpu * 1e6;
  state.counters["gpu_wins"] = gpu < cpu ? 1 : 0;
}
BENCHMARK(BM_SaxpyModeledCrossover)->Range(512, 1 << 26);

void BM_SaxpyScalarReference(benchmark::State& state) {
  // Vectorization-disabled twin at the same sizes; the SIMD speedup is
  // BM_SaxpyKernel / this, and the run aborts if the results diverge
  // (the FOM must come from the same arithmetic).
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<float> x(n, 1.0f), y(n, 2.0f), r(n), rv(n);
  bm::saxpy_kernel(rv.data(), x.data(), y.data(), n);
  for (auto _ : state) {
    bm::saxpy_kernel_scalar(r.data(), x.data(), y.data(), n);
    benchmark::DoNotOptimize(r.data());
    benchmark::ClobberMemory();
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (r[i] != rv[i]) {
      state.SkipWithError("scalar/vectorized saxpy parity failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::saxpy_bytes(n)));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_SaxpyScalarReference)->Arg(1024)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
