// Extra-P fitter benchmarks: fit cost vs number of scale points and
// hypothesis-space size — the analysis step Section 5 plans to run on
// every collected benchmark series.
#include <benchmark/benchmark.h>

#include <cmath>

#include "src/analysis/extrap.hpp"

namespace {

namespace an = benchpark::analysis;

std::vector<an::Measurement> linear_series(int points) {
  std::vector<an::Measurement> data;
  double p = 16;
  for (int i = 0; i < points; ++i) {
    data.push_back({p, -0.64 + 0.0466 * p});
    p *= 1.7;
  }
  return data;
}

void BM_FitVsPoints(benchmark::State& state) {
  auto data = linear_series(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(an::fit_scaling_model(data));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FitVsPoints)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_FitVsHypothesisSpace(benchmark::State& state) {
  auto data = linear_series(10);
  an::FitOptions options;
  options.exponents.clear();
  const int k = static_cast<int>(state.range(0));
  for (int i = 0; i < k; ++i) {
    options.exponents.push_back(0.25 * (i + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(an::fit_scaling_model(data, options));
  }
  state.counters["hypotheses"] = k * 3.0;  // x3 log exponents
}
BENCHMARK(BM_FitVsHypothesisSpace)->DenseRange(2, 12, 2);

void BM_FitNoisyLogSeries(benchmark::State& state) {
  std::vector<an::Measurement> data;
  for (double p : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    for (int rep = 0; rep < 5; ++rep) {
      data.push_back({p, 3.0 + 0.5 * std::log2(p) * (1 + 0.01 * rep)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(an::fit_scaling_model(data));
  }
}
BENCHMARK(BM_FitNoisyLogSeries);

void BM_AggregateMean(benchmark::State& state) {
  std::vector<an::Measurement> data;
  for (int i = 0; i < 1000; ++i) {
    data.push_back({static_cast<double>(i % 10), static_cast<double>(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(an::aggregate_mean(data));
  }
}
BENCHMARK(BM_AggregateMean);

}  // namespace

BENCHMARK_MAIN();
