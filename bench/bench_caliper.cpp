// Annotation-overhead benchmarks: what always-on Caliper-style profiling
// (Section 5) costs per region, and Thicket composition throughput.
#include <benchmark/benchmark.h>

#include "src/analysis/thicket.hpp"
#include "src/perf/caliper.hpp"

namespace {

namespace perf = benchpark::perf;

void BM_RegionBeginEnd(benchmark::State& state) {
  perf::Caliper::reset();
  for (auto _ : state) {
    perf::Caliper::begin("kernel");
    perf::Caliper::end("kernel");
  }
  state.SetItemsProcessed(state.iterations());
  perf::Caliper::reset();
}
BENCHMARK(BM_RegionBeginEnd);

void BM_NestedRegions(benchmark::State& state) {
  perf::Caliper::reset();
  for (auto _ : state) {
    perf::ScopedRegion main("main");
    perf::ScopedRegion solve("solve");
    perf::ScopedRegion residual("residual");
    benchmark::ClobberMemory();
  }
  perf::Caliper::reset();
}
BENCHMARK(BM_NestedRegions);

void BM_SnapshotCost(benchmark::State& state) {
  perf::Caliper::reset();
  for (int i = 0; i < 200; ++i) {
    perf::Caliper::record("region/" + std::to_string(i), 0.001, 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(perf::Caliper::snapshot());
  }
  perf::Caliper::reset();
}
BENCHMARK(BM_SnapshotCost);

void BM_ThicketStats(benchmark::State& state) {
  benchpark::analysis::Thicket thicket;
  for (int col = 0; col < 16; ++col) {
    perf::Profile profile;
    for (int r = 0; r < 64; ++r) {
      profile.regions.push_back(
          {"main/region" + std::to_string(r), 10, 0.01 * (col + r)});
    }
    profile.metadata["run"] = std::to_string(col);
    thicket.add_profile("run" + std::to_string(col), std::move(profile));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(thicket.stats());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 16);
}
BENCHMARK(BM_ThicketStats);

}  // namespace

BENCHMARK_MAIN();
