// Shared helpers for the benchmark binaries.
#pragma once

#include <benchmark/benchmark.h>

namespace benchpark_bench {

/// Sink for scalar results. benchmark::DoNotOptimize(lvalue) binds the
/// read-write overload whose "+m,r" asm constraint miscompiles scalar
/// doubles under GCC 12.2 (observed corrupting neighbouring stack slots
/// in bench_scheduler; upstream switched to "+r,m" later). Passing by
/// const reference selects the input-only "r,m" form, which is safe.
template <typename T>
inline void keep(const T& value) {
  benchmark::DoNotOptimize(value);
}

}  // namespace benchpark_bench
