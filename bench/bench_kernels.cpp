// HPCC-class kernel benchmarks backing the BENCH_kernels.json CI gate:
// optimized vs scalar-twin throughput for GEMM / PTRANS / FFT /
// RandomAccess, thread scaling for the blocked GEMM, and the modeled
// b_eff sweep. The CI job gates blocked GEMM >= 3x naive and (when the
// runner has the cores) 4-thread GEMM >= 2x single-thread.
//
// Every optimized/scalar pair re-checks parity before timing and
// SkipWithError()s on mismatch, so a miscompiled kernel can never post a
// "fast" number.
#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "bench/bench_util.hpp"

#include "src/benchmarks/fft.hpp"
#include "src/benchmarks/gemm.hpp"
#include "src/benchmarks/ptrans.hpp"
#include "src/benchmarks/randomaccess.hpp"
#include "src/system/beff.hpp"
#include "src/system/system.hpp"

namespace {

namespace bm = benchpark::benchmarks;

std::vector<double> random_matrix(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> m(n * n);
  for (auto& v : m) v = dist(rng);
  return m;
}

bool gemm_parity_holds(std::size_t n) {
  auto a = random_matrix(n, 1);
  auto b = random_matrix(n, 2);
  std::vector<double> blocked(n * n), naive(n * n);
  bm::gemm_blocked(blocked.data(), a.data(), b.data(), n, 1);
  bm::gemm_naive(naive.data(), a.data(), b.data(), n);
  return std::memcmp(blocked.data(), naive.data(),
                     n * n * sizeof(double)) == 0;
}

// ------------------------------------------------------------------ GEMM

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  if (!gemm_parity_holds(n)) {
    state.SkipWithError("blocked GEMM diverged from the scalar twin");
    return;
  }
  auto a = random_matrix(n, 3);
  auto b = random_matrix(n, 4);
  std::vector<double> c(n * n);
  for (auto _ : state) {
    bm::gemm_blocked(c.data(), a.data(), b.data(), n, 1);
    benchpark_bench::keep(c[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::gemm_flops(n)));
}
BENCHMARK(BM_GemmBlocked)->Arg(256)->Arg(384);

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_matrix(n, 3);
  auto b = random_matrix(n, 4);
  std::vector<double> c(n * n);
  for (auto _ : state) {
    bm::gemm_naive(c.data(), a.data(), b.data(), n);
    benchpark_bench::keep(c[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::gemm_flops(n)));
}
BENCHMARK(BM_GemmNaive)->Arg(256)->Arg(384);

void BM_GemmThreaded(benchmark::State& state) {
  const std::size_t n = 384;
  const int threads = static_cast<int>(state.range(0));
  auto a = random_matrix(n, 5);
  auto b = random_matrix(n, 6);
  std::vector<double> serial(n * n), c(n * n);
  bm::gemm_blocked(serial.data(), a.data(), b.data(), n, 1);
  bm::gemm_blocked(c.data(), a.data(), b.data(), n, threads);
  if (std::memcmp(serial.data(), c.data(), n * n * sizeof(double)) != 0) {
    state.SkipWithError("threaded GEMM diverged from serial");
    return;
  }
  for (auto _ : state) {
    bm::gemm_blocked(c.data(), a.data(), b.data(), n, threads);
    benchpark_bench::keep(c[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::gemm_flops(n)));
}
BENCHMARK(BM_GemmThreaded)->Arg(1)->Arg(2)->Arg(4);

// ---------------------------------------------------------------- PTRANS

void BM_PtransTiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_matrix(n, 7);
  std::vector<double> tiled(n * n), naive(n * n);
  bm::ptrans_tiled(tiled.data(), a.data(), n, 1);
  bm::ptrans_naive(naive.data(), a.data(), n);
  if (std::memcmp(tiled.data(), naive.data(), n * n * sizeof(double)) != 0) {
    state.SkipWithError("tiled PTRANS diverged from the scalar twin");
    return;
  }
  for (auto _ : state) {
    bm::ptrans_tiled(tiled.data(), a.data(), n, 1);
    benchpark_bench::keep(tiled[0]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::ptrans_bytes(n)));
}
BENCHMARK(BM_PtransTiled)->Arg(512)->Arg(1024);

void BM_PtransNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_matrix(n, 7);
  std::vector<double> b(n * n);
  for (auto _ : state) {
    bm::ptrans_naive(b.data(), a.data(), n);
    benchpark_bench::keep(b[0]);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::ptrans_bytes(n)));
}
BENCHMARK(BM_PtransNaive)->Arg(512)->Arg(1024);

// ------------------------------------------------------------------- FFT

void BM_FftVectorized(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  bm::FftPlan plan(n);
  std::vector<double> re(n), im(n), sc_re(n), sc_im(n);
  for (std::size_t i = 0; i < n; ++i) re[i] = static_cast<double>(i % 17);
  for (auto _ : state) {
    bm::fft_transform(plan, re.data(), im.data(), sc_re.data(),
                      sc_im.data());
    benchpark_bench::keep(re[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::fft_flops(n)));
}
BENCHMARK(BM_FftVectorized)->Arg(1024)->Arg(4096);

void BM_FftScalar(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  bm::FftPlan plan(n);
  std::vector<double> re(n), im(n), sc_re(n), sc_im(n);
  for (std::size_t i = 0; i < n; ++i) re[i] = static_cast<double>(i % 17);
  for (auto _ : state) {
    bm::fft_transform_scalar(plan, re.data(), im.data(), sc_re.data(),
                             sc_im.data());
    benchpark_bench::keep(re[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bm::fft_flops(n)));
}
BENCHMARK(BM_FftScalar)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------- RandomAccess

void BM_RandomAccessBatched(benchmark::State& state) {
  const std::size_t size = std::size_t{1} << state.range(0);
  const std::uint64_t updates = 4 * size;
  std::vector<std::uint64_t> table(size);
  std::iota(table.begin(), table.end(), 0);
  for (auto _ : state) {
    bm::randomaccess_update(table.data(), size, 0, updates, 1);
    benchpark_bench::keep(table[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(updates));
}
BENCHMARK(BM_RandomAccessBatched)->Arg(16)->Arg(20);

void BM_RandomAccessScalar(benchmark::State& state) {
  const std::size_t size = std::size_t{1} << state.range(0);
  const std::uint64_t updates = 4 * size;
  std::vector<std::uint64_t> table(size);
  std::iota(table.begin(), table.end(), 0);
  for (auto _ : state) {
    bm::randomaccess_update_scalar(table.data(), size, 0, updates);
    benchpark_bench::keep(table[0]);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(updates));
}
BENCHMARK(BM_RandomAccessScalar)->Arg(16)->Arg(20);

// ----------------------------------------------------------------- b_eff

void BM_BeffSweep(benchmark::State& state) {
  const auto& cts2 =
      benchpark::system::SystemRegistry::instance().get("cts2");
  const int ranks = static_cast<int>(state.range(0));
  double beff = 0;
  for (auto _ : state) {
    auto result = benchpark::system::run_beff(cts2, ranks);
    beff = result.beff_mbs;
    benchpark_bench::keep(beff);
  }
  state.counters["beff_mbs"] = beff;
}
BENCHMARK(BM_BeffSweep)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
