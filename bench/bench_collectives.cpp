// Collective cost-model sweeps: per-system alpha-beta behavior across
// rank counts and message sizes — the substrate behind Figure 14 and the
// cross-fabric comparisons (Omni-Path vs EDR vs Slingshot vs cloud EFA).
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"

#include "src/system/perf_model.hpp"
#include "src/system/system.hpp"

namespace {

namespace sys = benchpark::system;

const char* kSystems[] = {"cts1", "ats2", "ats4", "cloud-cts"};

void BM_BcastAcrossRanks(benchmark::State& state) {
  const auto& cts1 = sys::SystemRegistry::instance().get("cts1");
  sys::PerfModel model(cts1);
  const int p = static_cast<int>(state.range(0));
  double t = 0;
  for (auto _ : state) {
    t = model.collective_seconds(sys::Collective::bcast, p, 8);
    benchpark_bench::keep(t);
  }
  state.counters["bcast_us"] = t * 1e6;
}
BENCHMARK(BM_BcastAcrossRanks)->RangeMultiplier(4)->Range(16, 4096);

void BM_BcastAcrossSystems(benchmark::State& state) {
  const char* name = kSystems[state.range(0)];
  const auto& system = sys::SystemRegistry::instance().get(name);
  sys::PerfModel model(system);
  double t = 0;
  for (auto _ : state) {
    t = model.collective_seconds(sys::Collective::bcast, 1024, 8);
    benchpark_bench::keep(t);
  }
  state.SetLabel(name);
  state.counters["bcast1k_us"] = t * 1e6;
}
BENCHMARK(BM_BcastAcrossSystems)->DenseRange(0, 3, 1);

void BM_AllreduceMessageSizes(benchmark::State& state) {
  const auto& ats4 = sys::SystemRegistry::instance().get("ats4");
  sys::PerfModel model(ats4);
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  double t = 0;
  for (auto _ : state) {
    t = model.collective_seconds(sys::Collective::allreduce, 512, bytes);
    benchpark_bench::keep(t);
  }
  state.counters["allreduce_us"] = t * 1e6;
}
BENCHMARK(BM_AllreduceMessageSizes)->RangeMultiplier(16)->Range(8, 1 << 24);

void BM_CollectiveKinds(benchmark::State& state) {
  const auto& cts1 = sys::SystemRegistry::instance().get("cts1");
  sys::PerfModel model(cts1);
  const auto kind = static_cast<sys::Collective>(state.range(0));
  double t = 0;
  for (auto _ : state) {
    t = model.collective_seconds(kind, 512, 4096);
    benchpark_bench::keep(t);
  }
  state.SetLabel(std::string(sys::collective_name(kind)));
  state.counters["time_us"] = t * 1e6;
}
BENCHMARK(BM_CollectiveKinds)->DenseRange(0, 4, 1);

}  // namespace

BENCHMARK_MAIN();
