// Concretizer benchmarks: the cost of turning abstract specs into
// concrete build DAGs on the cts1 scope (Figure 4 externals), and how
// environment unification scales with the number of root specs.
#include <benchmark/benchmark.h>

#include "src/concretizer/concretizer.hpp"
#include "src/env/environment.hpp"
#include "src/pkg/repo.hpp"
#include "src/system/system.hpp"

namespace {

using benchpark::concretizer::Concretizer;
namespace pkg = benchpark::pkg;

Concretizer make_cts1_concretizer() {
  const auto& cts1 = benchpark::system::SystemRegistry::instance().get("cts1");
  return Concretizer(pkg::default_repo_stack(), cts1.config);
}

void BM_ConcretizeSaxpy(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretizer.concretize("saxpy+openmp"));
  }
}
BENCHMARK(BM_ConcretizeSaxpy);

void BM_ConcretizeAmgFullStack(benchmark::State& state) {
  // amg2023+caliper closes over hypre, blas/mpi externals, caliper, adiak,
  // cmake — the paper's Figure 2 spec.
  auto concretizer = make_cts1_concretizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretizer.concretize("amg2023+caliper"));
  }
}
BENCHMARK(BM_ConcretizeAmgFullStack);

void BM_ConcretizeWithUserConstraints(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretizer.concretize(
        "amg2023@1.1+caliper%gcc@12.1.1 target=broadwell ^hypre@2.28.0"));
  }
}
BENCHMARK(BM_ConcretizeWithUserConstraints);

void BM_EnvironmentUnifyScaling(benchmark::State& state) {
  // Environments with N roots sharing one dependency closure (unify:true):
  // later roots should reuse the context instead of re-solving.
  const char* roots[] = {"saxpy+openmp", "amg2023+caliper", "hypre",
                         "stream", "osu-micro-benchmarks", "hdf5",
                         "caliper", "zlib"};
  auto concretizer = make_cts1_concretizer();
  for (auto _ : state) {
    benchpark::env::Environment environment;
    for (int i = 0; i < state.range(0); ++i) {
      environment.add(roots[i % 8]);
    }
    environment.concretize(concretizer);
    benchmark::DoNotOptimize(environment.concrete_specs());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EnvironmentUnifyScaling)->DenseRange(1, 8, 1)->Complexity();

void BM_LockfileEmit(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  benchpark::env::Environment environment;
  environment.add("amg2023+caliper");
  environment.concretize(concretizer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(environment.lockfile());
  }
}
BENCHMARK(BM_LockfileEmit);

void BM_LockfileRestore(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  benchpark::env::Environment environment;
  environment.add("amg2023+caliper");
  environment.concretize(concretizer);
  auto lock = environment.lockfile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        benchpark::env::Environment::from_lockfile(lock));
  }
}
BENCHMARK(BM_LockfileRestore);

}  // namespace

BENCHMARK_MAIN();
