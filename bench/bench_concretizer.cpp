// Concretizer benchmarks: the cost of turning abstract specs into
// concrete build DAGs on the cts1 scope (Figure 4 externals), how
// environment unification scales with the number of root specs, and the
// memoized parallel concretize_all engine — warm-cache throughput on a
// repeated-roots experiment matrix vs the pre-cache serial path, and
// thread-pool fan-out on independent roots.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/concretizer/concretize_cache.hpp"
#include "src/concretizer/concretizer.hpp"
#include "src/env/environment.hpp"
#include "src/pkg/repo.hpp"
#include "src/spec/spec.hpp"
#include "src/system/system.hpp"

namespace {

using benchpark::concretizer::ConcretizationCache;
using benchpark::concretizer::ConcretizeRequest;
using benchpark::concretizer::Concretizer;
using benchpark::spec::Spec;
namespace pkg = benchpark::pkg;

Concretizer make_cts1_concretizer() {
  const auto& cts1 = benchpark::system::SystemRegistry::instance().get("cts1");
  return Concretizer(pkg::default_repo_stack(), cts1.config);
}

/// One root, fresh context, no memo cache: the pre-request-API cost.
Spec concretize_uncached(const Concretizer& c, const std::string& text) {
  ConcretizeRequest request;
  request.roots = {Spec::parse(text)};
  request.unify = false;
  request.use_cache = false;
  request.threads = 1;
  return std::move(c.concretize_all(request).specs.front());
}

/// A repeated-roots experiment matrix: every unique root appears
/// `repeats` times, the way a scaling study re-uses one software stack
/// across matrix cells.
std::vector<Spec> repeated_roots_matrix(int repeats) {
  const char* unique[] = {"saxpy+openmp", "amg2023+caliper", "hypre",
                          "stream", "zlib", "osu-micro-benchmarks", "openblas",
                          "caliper"};
  std::vector<Spec> roots;
  roots.reserve(8u * static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    for (const char* u : unique) roots.push_back(Spec::parse(u));
  }
  return roots;
}

void BM_ConcretizeSaxpy(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretize_uncached(concretizer, "saxpy+openmp"));
  }
}
BENCHMARK(BM_ConcretizeSaxpy);

void BM_ConcretizeAmgFullStack(benchmark::State& state) {
  // amg2023+caliper closes over hypre, blas/mpi externals, caliper, adiak,
  // cmake — the paper's Figure 2 spec.
  auto concretizer = make_cts1_concretizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        concretize_uncached(concretizer, "amg2023+caliper"));
  }
}
BENCHMARK(BM_ConcretizeAmgFullStack);

void BM_ConcretizeWithUserConstraints(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretize_uncached(
        concretizer,
        "amg2023@1.1+caliper%gcc@12.1.1 target=broadwell ^hypre@2.28.0"));
  }
}
BENCHMARK(BM_ConcretizeWithUserConstraints);

void BM_EnvironmentUnifyScaling(benchmark::State& state) {
  // Environments with N roots sharing one dependency closure (unify:true):
  // later roots should reuse the context instead of re-solving.
  const char* roots[] = {"saxpy+openmp", "amg2023+caliper", "hypre",
                         "stream", "osu-micro-benchmarks", "hdf5",
                         "caliper", "zlib"};
  auto concretizer = make_cts1_concretizer();
  for (auto _ : state) {
    benchpark::env::Environment environment;
    for (int i = 0; i < state.range(0); ++i) {
      environment.add(roots[i % 8]);
    }
    environment.concretize(concretizer);
    benchmark::DoNotOptimize(environment.concrete_specs());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EnvironmentUnifyScaling)->DenseRange(1, 8, 1)->Complexity();

// ---------------------------------------------------------------------------
// The memoized parallel engine on a repeated-roots matrix (8 unique
// roots x `range(0)` repetitions). "MatrixSerialUncached" is the pre-PR
// baseline: every cell re-resolves from scratch on one thread. The CI
// bench job asserts warm-cache throughput >= 3x this baseline.

void BM_MatrixSerialUncached(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  auto roots = repeated_roots_matrix(static_cast<int>(state.range(0)));
  ConcretizeRequest request;
  request.roots = roots;
  request.unify = false;
  request.use_cache = false;
  request.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretizer.concretize_all(request));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(roots.size()));
}
BENCHMARK(BM_MatrixSerialUncached)->Arg(4)->Arg(16);

void BM_MatrixWarmCache(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  auto roots = repeated_roots_matrix(static_cast<int>(state.range(0)));
  ConcretizeRequest request;
  request.roots = roots;
  request.unify = false;
  request.use_cache = true;
  request.threads = 1;
  ConcretizationCache::global().clear();
  (void)concretizer.concretize_all(request);  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretizer.concretize_all(request));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(roots.size()));
}
BENCHMARK(BM_MatrixWarmCache)->Arg(4)->Arg(16);

void BM_MatrixColdCache(benchmark::State& state) {
  // First-touch cost including canonicalization, key construction, and
  // insert traffic: what priming the cache actually costs.
  auto concretizer = make_cts1_concretizer();
  auto roots = repeated_roots_matrix(static_cast<int>(state.range(0)));
  ConcretizeRequest request;
  request.roots = roots;
  request.unify = false;
  request.use_cache = true;
  request.threads = 1;
  for (auto _ : state) {
    state.PauseTiming();
    ConcretizationCache::global().clear();
    state.ResumeTiming();
    benchmark::DoNotOptimize(concretizer.concretize_all(request));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(roots.size()));
}
BENCHMARK(BM_MatrixColdCache)->Arg(4)->Arg(16);

void BM_ConcretizeAllParallel(benchmark::State& state) {
  // Pure fan-out speedup (cache off): independent roots across the pool.
  auto concretizer = make_cts1_concretizer();
  auto roots = repeated_roots_matrix(4);
  ConcretizeRequest request;
  request.roots = roots;
  request.unify = false;
  request.use_cache = false;
  request.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretizer.concretize_all(request));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(roots.size()));
}
BENCHMARK(BM_ConcretizeAllParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ConcretizeAllUnifyComponents(benchmark::State& state) {
  // unify:true batches resolve per connected component; disjoint stacks
  // (amg2023 closure vs zlib vs openblas) run concurrently.
  auto concretizer = make_cts1_concretizer();
  ConcretizeRequest request;
  request.roots = {Spec::parse("amg2023+caliper"), Spec::parse("saxpy"),
                   Spec::parse("zlib"), Spec::parse("openblas"),
                   Spec::parse("osu-micro-benchmarks"), Spec::parse("stream")};
  request.unify = true;
  request.use_cache = false;
  request.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(concretizer.concretize_all(request));
  }
}
BENCHMARK(BM_ConcretizeAllUnifyComponents)->Arg(1)->Arg(4);

void BM_CanonicalSpecHash(benchmark::State& state) {
  auto spec = Spec::parse(
      "amg2023@1.1+caliper%gcc@12.1.1 target=broadwell ^hypre@2.28.0 ^zlib");
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchpark::concretizer::canonical_spec_hash(spec));
  }
}
BENCHMARK(BM_CanonicalSpecHash);

void BM_LockfileEmit(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  benchpark::env::Environment environment;
  environment.add("amg2023+caliper");
  environment.concretize(concretizer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(environment.lockfile());
  }
}
BENCHMARK(BM_LockfileEmit);

void BM_LockfileRestore(benchmark::State& state) {
  auto concretizer = make_cts1_concretizer();
  benchpark::env::Environment environment;
  environment.add("amg2023+caliper");
  environment.concretize(concretizer);
  auto lock = environment.lockfile();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        benchpark::env::Environment::from_lockfile(lock));
  }
}
BENCHMARK(BM_LockfileRestore);

}  // namespace

BENCHMARK_MAIN();
