// Persistent-store benchmarks: journal primitives (put/flush/replay) and
// the cross-run warm-start path the store exists for — the same saxpy
// campaign run cold (empty store) vs warm (store already holds the
// campaign), where a warm re-run must install nothing and execute zero
// experiments. CI gates on the warm counters in BENCH_store.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "src/ramble/workspace.hpp"
#include "src/store/store.hpp"
#include "src/support/fs_util.hpp"
#include "src/system/system.hpp"
#include "src/yaml/parser.hpp"

namespace {

using namespace benchpark;

// The Figure 10 saxpy matrix (4 matrix combos x 2 zipped pairs = 8
// experiments) — the same campaign shape the store tests key on.
const char* kSaxpyRambleYaml =
    "ramble:\n"
    "  applications:\n"
    "    saxpy:\n"
    "      workloads:\n"
    "        problem:\n"
    "          env_vars:\n"
    "            set:\n"
    "              OMP_NUM_THREADS: '{n_threads}'\n"
    "          variables:\n"
    "            n_ranks: '8'\n"
    "            batch_time: '120'\n"
    "          experiments:\n"
    "            saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}:\n"
    "              variables:\n"
    "                processes_per_node: ['8', '4']\n"
    "                n_nodes: ['1', '2']\n"
    "                n_threads: ['2', '4']\n"
    "                n: ['512', '1024']\n"
    "              matrices:\n"
    "              - size_threads:\n"
    "                - n\n"
    "                - n_threads\n"
    "  spack:\n"
    "    packages:\n"
    "      gcc1211:\n"
    "        spack_spec: gcc@12.1.1\n"
    "      default-mpi:\n"
    "        spack_spec: mvapich2@2.3.7\n"
    "      saxpy:\n"
    "        spack_spec: saxpy@1.0.0 +openmp\n"
    "        compiler: gcc1211\n"
    "    environments:\n"
    "      saxpy:\n"
    "        packages:\n"
    "        - default-mpi\n"
    "        - saxpy\n";

/// One full campaign pass against `store`: fresh workspace directory,
/// configure + setup + run_all. Returns the run report; the caller reads
/// install traffic off the workspace it passes in.
ramble::RunReport run_campaign(const std::filesystem::path& ws_root,
                               const store::StoreHandle& store,
                               install::InstallReport* install_out) {
  auto system = system::SystemRegistry::instance().get("cts1");
  auto ws = ramble::Workspace::create(ws_root, system);
  ws.configure(yaml::parse(kSaxpyRambleYaml));
  ws.set_store(store);
  ws.setup();
  if (install_out != nullptr) *install_out = ws.install_report();
  auto report = ws.run_all();
  return report;
}

// -- journal primitives -----------------------------------------------------

// put() throughput into the in-memory live map (dedup + pending buffer),
// no I/O until the final flush.
void BM_StorePut(benchmark::State& state) {
  support::TempDir tmp("bench-store-put");
  auto store = store::Store::open(tmp.path() / "store");
  std::uint64_t i = 0;
  for (auto _ : state) {
    store->put("bench", "key-" + std::to_string(i++),
               "value payload of a realistic size for an index record");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StorePut);

// Append + fsync cost per flushed batch (Arg = records per batch). This
// is the durability price a run_all pays once per campaign, not per
// experiment.
void BM_StoreFlushBatch(benchmark::State& state) {
  support::TempDir tmp("bench-store-flush");
  auto store = store::Store::open(tmp.path() / "store");
  const auto batch = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t i = 0;
  for (auto _ : state) {
    for (std::uint64_t k = 0; k < batch; ++k) {
      store->put("bench", "key-" + std::to_string(i++),
                 "value payload of a realistic size for an index record");
    }
    store->flush();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_StoreFlushBatch)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

// Journal replay at open: the cold-boot cost of a store holding Arg live
// records (what every warm Driver start pays before its first hit).
void BM_StoreOpenReplay(benchmark::State& state) {
  support::TempDir tmp("bench-store-open");
  const auto dir = tmp.path() / "store";
  const auto records = static_cast<std::uint64_t>(state.range(0));
  {
    auto seed = store::Store::open(dir);
    for (std::uint64_t i = 0; i < records; ++i) {
      seed->put("bench", "key-" + std::to_string(i),
                "value payload of a realistic size for an index record");
    }
    seed->flush();
  }
  for (auto _ : state) {
    auto store = store::Store::open(dir);
    benchmark::DoNotOptimize(store->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(records));
}
BENCHMARK(BM_StoreOpenReplay)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// -- cross-run warm start ----------------------------------------------------

// Cold baseline: every iteration opens an empty store, so all software
// installs and all 8 experiments execute. store_misses == experiments.
void BM_CampaignColdStore(benchmark::State& state) {
  std::size_t experiments = 0;
  std::size_t executions = 0;
  std::size_t installs = 0;
  for (auto _ : state) {
    support::TempDir tmp("bench-store-cold");
    auto store = store::Store::open(tmp.path() / "store");
    install::InstallReport install;
    auto report = run_campaign(tmp.path() / "ws", store, &install);
    experiments = report.experiments;
    executions = report.store_misses;
    installs = install.from_source + install.from_cache + install.externals;
    benchmark::DoNotOptimize(report);
  }
  state.counters["experiments"] = static_cast<double>(experiments);
  state.counters["cold_executions"] = static_cast<double>(executions);
  state.counters["cold_installs"] = static_cast<double>(installs);
}
BENCHMARK(BM_CampaignColdStore)->Unit(benchmark::kMillisecond);

// Warm re-run: the store is primed once with the identical campaign;
// every timed iteration replays it from a different workspace root. The
// incremental contract CI gates on: zero installs (everything already in
// the warmed install tree) and zero experiment executions (all 8 keys
// hit), counters exported for the BENCH_store.json gate.
void BM_CampaignWarmStore(benchmark::State& state) {
  support::TempDir tmp("bench-store-warm");
  auto store = store::Store::open(tmp.path() / "store");
  run_campaign(tmp.path() / "prime-ws", store, nullptr);  // prime the store

  std::size_t experiments = 0;
  std::size_t hits = 0;
  std::size_t executions = 0;
  std::size_t installs = 0;
  std::size_t already = 0;
  std::uint64_t run = 0;
  for (auto _ : state) {
    install::InstallReport install;
    auto report = run_campaign(
        tmp.path() / ("ws-" + std::to_string(run++)), store, &install);
    experiments = report.experiments;
    hits = report.store_hits;
    executions = report.store_misses;
    installs = install.from_source + install.from_cache + install.externals;
    already = install.already_installed;
    benchmark::DoNotOptimize(report);
  }
  state.counters["experiments"] = static_cast<double>(experiments);
  state.counters["warm_store_hits"] = static_cast<double>(hits);
  state.counters["warm_executions"] = static_cast<double>(executions);
  state.counters["warm_installs"] = static_cast<double>(installs);
  state.counters["warm_already_installed"] = static_cast<double>(already);
}
BENCHMARK(BM_CampaignWarmStore)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
