// Experiment-generation benchmarks: the Figure 10 matrix expansion and
// how the cross-product scales with matrix dimensions (Ramble's goal of
// "creation of large sets of experiments with concise YAML files").
#include <benchmark/benchmark.h>

#include "src/ramble/experiment.hpp"
#include "src/yaml/parser.hpp"

namespace {

namespace ramble = benchpark::ramble;

void BM_Figure10Expansion(benchmark::State& state) {
  auto node = benchpark::yaml::parse(
      "variables:\n"
      "  processes_per_node: ['8', '4']\n"
      "  n_nodes: ['1', '2']\n"
      "  n_threads: ['2', '4']\n"
      "  n: ['512', '1024']\n"
      "matrices:\n"
      "- size_threads:\n"
      "  - n\n"
      "  - n_threads\n");
  auto tmpl = ramble::ExperimentTemplate::from_yaml(
      "saxpy_{n}_{n_nodes}_{n_ranks}_{n_threads}", node);
  ramble::VariableMap base{{"n_ranks", "{processes_per_node}*{n_nodes}"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ramble::expand_experiments(tmpl, base));
  }
}
BENCHMARK(BM_Figure10Expansion);

void BM_CrossProductScaling(benchmark::State& state) {
  // One matrix over k vector variables of 4 values each: 4^k experiments.
  const int k = static_cast<int>(state.range(0));
  ramble::ExperimentTemplate tmpl;
  tmpl.name_template = "exp";
  std::vector<std::string> matrix_vars;
  for (int v = 0; v < k; ++v) {
    std::string name = "v" + std::to_string(v);
    tmpl.name_template += "_{" + name + "}";
    tmpl.vectors.emplace_back(
        name, std::vector<std::string>{"1", "2", "3", "4"});
    matrix_vars.push_back(name);
  }
  tmpl.matrices.emplace_back("m", matrix_vars);
  std::size_t generated = 0;
  for (auto _ : state) {
    auto experiments = ramble::expand_experiments(tmpl);
    generated = experiments.size();
    benchmark::DoNotOptimize(experiments);
  }
  state.counters["experiments"] = static_cast<double>(generated);
  state.SetComplexityN(static_cast<long>(generated));
}
BENCHMARK(BM_CrossProductScaling)->DenseRange(1, 6, 1)->Complexity();

void BM_VariableExpansion(benchmark::State& state) {
  ramble::VariableMap vars{
      {"mpi_command", "srun -N {n_nodes} -n {n_ranks}"},
      {"n_nodes", "4"},
      {"n_ranks", "{processes_per_node}*{n_nodes}"},
      {"processes_per_node", "36"},
      {"experiment_run_dir", "/ws/experiments/saxpy/problem/e1"},
      {"batch_time", "120"},
  };
  const std::string script =
      "#!/bin/bash\n#SBATCH -N {n_nodes}\n#SBATCH -n {n_ranks}\n"
      "#SBATCH -t {batch_time}:00\ncd {experiment_run_dir}\n"
      "{mpi_command} saxpy -n 1024\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ramble::expand(script, vars));
  }
}
BENCHMARK(BM_VariableExpansion);

void BM_ArithmeticEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ramble::evaluate_arithmetic("(8 * 4 + 2) * 3 - 100 / 4"));
  }
}
BENCHMARK(BM_ArithmeticEvaluation);

}  // namespace

BENCHMARK_MAIN();
