// End-to-end workflow benchmarks: the full Figure 1c pipeline (setup /
// run / analyze) on the simulated cts1 system — the latency a CI job pays
// per benchmark per system.
#include <benchmark/benchmark.h>

#include "src/core/driver.hpp"
#include "src/support/fs_util.hpp"

namespace {

using namespace benchpark;

void BM_WorkflowSaxpyCts1(benchmark::State& state) {
  core::Driver driver;
  std::size_t experiments = 0;
  for (auto _ : state) {
    support::TempDir tmp("bench-workflow");
    auto report =
        driver.run_workflow({"saxpy", "openmp"}, "cts1", tmp.path() / "ws");
    experiments = report.results.size();
    benchmark::DoNotOptimize(report);
  }
  state.counters["experiments"] = static_cast<double>(experiments);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(experiments));
}
BENCHMARK(BM_WorkflowSaxpyCts1)->Unit(benchmark::kMillisecond);

void BM_WorkspaceSetupOnly(benchmark::State& state) {
  core::Driver driver;
  for (auto _ : state) {
    support::TempDir tmp("bench-setup");
    auto ws = driver.setup({"saxpy", "openmp"}, "cts1", tmp.path() / "ws");
    ws.setup();
    benchmark::DoNotOptimize(ws.prepared());
  }
}
BENCHMARK(BM_WorkspaceSetupOnly)->Unit(benchmark::kMillisecond);

void BM_WorkflowAmgAts2(benchmark::State& state) {
  core::Driver driver;
  for (auto _ : state) {
    support::TempDir tmp("bench-amg");
    auto report =
        driver.run_workflow({"amg2023", "cuda"}, "ats2", tmp.path() / "ws");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_WorkflowAmgAts2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
