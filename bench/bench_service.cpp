// Service benchmarks: admission throughput (submissions/sec into a
// paused in-memory service), the full submit->dispatch->complete soak
// (16 tenants, synthetic campaigns), and durable-submit overhead (the
// per-ticket journal fsync). The soak publishes admission-wait p50/p99
// — the CI service-stress job normalizes these into BENCH_service.json
// and gates on throughput.
#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"

#include "src/serve/service.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/percentile.hpp"

namespace {

namespace serve = benchpark::serve;
namespace support = benchpark::support;

serve::CampaignRunner null_runner() {
  return [](const serve::CampaignRequest&, const serve::CampaignContext&) {
    serve::CampaignOutcome out;
    out.experiments = 1;
    out.succeeded = 1;
    return out;
  };
}

/// Pure admission cost: the service is paused, so every submit exercises
/// validation, fair-share push, ticket bookkeeping — and nothing else.
void BM_SubmitAdmission(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    serve::ServiceConfig config;
    config.workers = 1;
    config.start_paused = true;
    config.max_queued_total = 1u << 20;
    config.default_quota = {1.0, 4, 1u << 20};
    config.runner = null_runner();
    serve::BenchService service(std::move(config));
    state.ResumeTiming();

    for (int i = 0; i < 1024; ++i) {
      serve::CampaignRequest req;
      req.tenant = "tenant" + std::to_string(i % tenants);
      req.experiment = "exp/v";
      req.system = "cts1";
      benchpark_bench::keep(service.submit(req));
    }

    state.PauseTiming();
    service.wait_all();  // settle before the dtor drains
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
  state.SetLabel(std::to_string(tenants) + " tenants");
}
BENCHMARK(BM_SubmitAdmission)->Arg(1)->Arg(16);

/// The soak: 16 tenants x 64 campaigns land from 16 submitter threads
/// while 4 workers dispatch. Items/sec is end-to-end campaign
/// throughput; counters carry the admission-wait distribution.
void BM_ServiceSoak(benchmark::State& state) {
  constexpr int kTenants = 16;
  constexpr int kPerTenant = 64;
  double wait_p50_us = 0;
  double wait_p99_us = 0;
  for (auto _ : state) {
    serve::ServiceConfig config;
    config.workers = 4;
    config.max_queued_total = 1u << 20;
    config.default_quota = {1.0, 2, 1u << 20};
    config.runner = null_runner();
    serve::BenchService service(std::move(config));

    std::vector<std::thread> submitters;
    submitters.reserve(kTenants);
    for (int t = 0; t < kTenants; ++t) {
      submitters.emplace_back([&service, t] {
        for (int i = 0; i < kPerTenant; ++i) {
          serve::CampaignRequest req;
          req.tenant = "tenant" + std::to_string(t);
          req.experiment = "exp" + std::to_string(i % 5) + "/v";
          req.system = "cts1";
          (void)service.submit(req);
        }
      });
    }
    for (auto& s : submitters) s.join();
    auto statuses = service.wait_all();

    std::vector<double> waits_us;
    waits_us.reserve(statuses.size());
    for (const auto& st : statuses) {
      waits_us.push_back(st.admission_wait_seconds * 1e6);
    }
    wait_p50_us = support::percentile(waits_us, 50.0);
    wait_p99_us = support::percentile(waits_us, 99.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kTenants * kPerTenant);
  state.counters["admission_wait_p50_us"] = wait_p50_us;
  state.counters["admission_wait_p99_us"] = wait_p99_us;
}
BENCHMARK(BM_ServiceSoak)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Durable admission: every submit journals the ticket and fsyncs. The
/// delta against BM_SubmitAdmission is the crash-durability price.
void BM_SubmitDurable(benchmark::State& state) {
  support::TempDir base;
  serve::ServiceConfig config;
  config.base_dir = base.path();
  config.workers = 2;  // dispatch keeps pace, so the queue stays bounded
  config.max_queued_total = 1u << 20;
  config.default_quota = {1.0, 4, 1u << 20};
  config.durable_submits = true;
  config.runner = null_runner();
  serve::BenchService service(std::move(config));

  int i = 0;
  for (auto _ : state) {
    serve::CampaignRequest req;
    req.tenant = "tenant" + std::to_string(i++ % 8);
    req.experiment = "exp/v";
    req.system = "cts1";
    benchpark_bench::keep(service.submit(req));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  service.wait_all();
}
BENCHMARK(BM_SubmitDurable);

}  // namespace

BENCHMARK_MAIN();
