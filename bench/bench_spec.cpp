// Microbenchmarks of the spec language: parsing, satisfies, constrain,
// and DAG hashing — the operations every concretization and cache lookup
// pays for.
#include <benchmark/benchmark.h>

#include "src/spec/spec.hpp"

namespace {

using benchpark::spec::Spec;

void BM_SpecParseSimple(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Spec::parse("amg2023+caliper"));
  }
}
BENCHMARK(BM_SpecParseSimple);

void BM_SpecParseFull(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(Spec::parse(
        "amg2023@1.1+caliper+openmp~cuda%gcc@12.1.1 target=broadwell "
        "^hypre@2.28.0+openmp ^mvapich2@2.3.7 ^caliper@2.9.1"));
  }
}
BENCHMARK(BM_SpecParseFull);

void BM_SpecPrint(benchmark::State& state) {
  auto spec = Spec::parse(
      "amg2023@1.1+caliper%gcc@12.1.1 target=broadwell ^hypre+cuda");
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.str());
  }
}
BENCHMARK(BM_SpecPrint);

void BM_SpecSatisfies(benchmark::State& state) {
  auto spec = Spec::parse(
      "amg2023@1.1+caliper%gcc@12.1.1 target=broadwell ^hypre@2.28+cuda");
  auto constraint = Spec::parse("amg2023@1: +caliper ^hypre+cuda");
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.satisfies(constraint));
  }
}
BENCHMARK(BM_SpecSatisfies);

void BM_SpecConstrain(benchmark::State& state) {
  auto base = Spec::parse("hypre@2.24:");
  auto extra = Spec::parse("hypre+cuda@:2.28 %gcc@12");
  for (auto _ : state) {
    Spec merged = base;
    merged.constrain(extra);
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_SpecConstrain);

void BM_SpecDagHash(benchmark::State& state) {
  auto spec = Spec::parse("zlib@=1.3%gcc@=12.1.1 target=broadwell");
  spec.mark_concrete();
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.dag_hash());
  }
}
BENCHMARK(BM_SpecDagHash);

void BM_VersionSatisfies(benchmark::State& state) {
  auto constraint = benchpark::spec::VersionConstraint::parse("1.2:1.8,2.0");
  benchpark::spec::Version version("1.5.3");
  for (auto _ : state) {
    benchmark::DoNotOptimize(constraint.satisfied_by(version));
  }
}
BENCHMARK(BM_VersionSatisfies);

}  // namespace

BENCHMARK_MAIN();
