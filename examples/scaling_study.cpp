// Scaling study: the Section 5 analysis pipeline.
//
// Runs the AMG2023 strong-scaling experiment on three systems (cts1 CPU,
// ats2 CUDA, ats4 ROCm — the exact trio of Section 4), collects FOMs
// into the metrics database, composes Caliper-style profiles across
// systems with a Thicket, and fits Extra-P scaling models (the Figure 14
// methodology applied to the solve phase).
#include <cstdio>
#include <iostream>

#include "src/analysis/extrap.hpp"
#include "src/analysis/thicket.hpp"
#include "src/core/campaign.hpp"
#include "src/core/driver.hpp"
#include "src/perf/caliper.hpp"
#include "src/support/fs_util.hpp"

int main() {
  using namespace benchpark;

  core::Driver driver;
  support::TempDir tmp("benchpark-scaling");

  std::cout << "== AMG2023 strong scaling across the paper's systems ==\n";

  // Each system gets its matching variant (Table 1 orthogonality: the
  // experiment changes, the benchmark and system specs do not).
  struct Target {
    const char* system;
    const char* variant;
  };
  analysis::Thicket thicket;
  for (const Target& target : std::initializer_list<Target>{
           {"cts1", "openmp"}, {"ats2", "cuda"}, {"ats4", "rocm"}}) {
    core::Campaign campaign(&driver, {"amg2023", target.variant},
                            tmp.path() / target.system);
    campaign.add_system(target.system);
    campaign.run();
    const auto& summary = campaign.summaries().front();
    std::printf("  %-6s (%s): %zu/%zu experiments succeeded\n",
                target.system, target.variant, summary.succeeded,
                summary.experiments);

    std::cout << campaign.comparison_table("solve_time").render();

    // Build a per-system profile from the measured FOMs for the Thicket.
    perf::Profile profile;
    auto rows = campaign.metrics().query({.fom_name = "solve_time"});
    double total = 0;
    for (const auto* row : rows) total += row->value;
    profile.regions.push_back({"amg/solve", rows.size(), total});
    profile.metadata["system"] = target.system;
    profile.metadata["variant"] = target.variant;
    thicket.add_profile(target.system, std::move(profile));

    if (summary.succeeded >= 3) {
      auto model = campaign.scaling_model(target.system, "solve_time");
      std::cout << "  Extra-P model of solve_time vs ranks on "
                << target.system << ":\n    " << model.str() << "   "
                << model.complexity()
                << "  (adj. R^2 = " << model.r_squared << ")\n\n";
    }
  }

  std::cout << "== Thicket: solve time composed across systems ==\n"
            << thicket.to_table().render();
  auto stats = thicket.stats_for("amg/solve");
  if (stats) {
    std::printf(
        "  across systems: mean=%.4fs  min=%.4fs  max=%.4fs  (n=%zu)\n",
        stats->mean, stats->min, stats->max, stats->present_in);
  }

  std::cout << "\nGPU systems should win on this problem size; the CPU\n"
               "system shows the strong-scaling communication tail.\n";
  return 0;
}
