// The Figure 6 automation workflow, end to end:
//
//   users -> GitHub PR -> Hubcast (security criteria) -> GitLab mirror ->
//   CI builders + benchmark runners at multiple sites (Jacamar identity)
//   -> metrics database + binary cache -> status checks back on the PR.
//
// An untrusted fork PR is blocked until a site admin approves it; the
// pipeline then builds the saxpy environment (hitting the rolling binary
// cache on the second site) and runs the benchmark suite on two systems,
// streaming per-site status back to GitHub.
#include <cstdio>
#include <iostream>

#include "src/analysis/metrics_db.hpp"
#include "src/ci/git.hpp"
#include "src/ci/hubcast.hpp"
#include "src/ci/pipeline.hpp"
#include "src/core/driver.hpp"
#include "src/support/fs_util.hpp"
#include "src/yaml/parser.hpp"

int main() {
  using namespace benchpark;

  // --- the hosting setup ------------------------------------------------
  ci::GitHost github("github");
  ci::GitHost gitlab("gitlab");
  auto& upstream = github.create_repo("llnl", "benchpark");
  upstream.commit("main", "olga", "initial import",
                  {{"experiments/saxpy/openmp/ramble.yaml", "v1"},
                   {".gitlab-ci.yml",
                    "stages: [build, bench, analyze]\n"}});
  gitlab.create_repo("llnl", "benchpark")
      .commit("main", "hubcast", "mirror", {{"mirror", "marker"}});

  ci::SecurityPolicy policy;
  policy.admins = {"site-admin"};
  policy.trusted_users = {"olga"};
  ci::Hubcast hubcast(&github, &gitlab, "llnl/benchpark", policy);

  // --- a contributor's fork PR -------------------------------------------
  github.fork("llnl/benchpark", "student");
  github.repo("student/benchpark")
      .commit("tune-saxpy", "student", "increase problem sizes",
              {{"experiments/saxpy/openmp/ramble.yaml", "v2"}});
  auto pr = github.open_pr("saxpy: larger problems", "student",
                           "student/benchpark", "tune-saxpy",
                           "llnl/benchpark");
  std::cout << "PR #" << pr << " opened by 'student' (fork)\n";

  if (!hubcast.try_mirror_pr(pr)) {
    std::cout << "hubcast: " << github.pr(pr).check("hubcast/mirror")
                     ->description
              << "\n";
  }
  std::cout << "site-admin reviews and approves the PR...\n";
  github.approve_pr(pr, "site-admin");
  auto branch = hubcast.try_mirror_pr(pr);
  std::cout << "hubcast: mirrored to gitlab branch '" << *branch << "'\n\n";

  // --- runners at two sites, Jacamar identity ---------------------------
  ci::SiteAccounts llnl_accounts;
  llnl_accounts.add("olga", 5001);
  llnl_accounts.add("site-admin", 1000);
  auto llnl_cts1 = std::make_shared<ci::Jacamar>("llnl", llnl_accounts);
  auto llnl_ats2 = std::make_shared<ci::Jacamar>("llnl", llnl_accounts);

  ci::PipelineEngine engine;
  engine.register_runner({"llnl-cts1-01", {"cts1"}, llnl_cts1});
  engine.register_runner({"llnl-ats2-01", {"ats2", "cuda"}, llnl_ats2});

  auto pipeline = ci::PipelineDef::from_yaml(yaml::parse(
      "stages: [build, bench, analyze]\n"
      "build-cts1:\n"
      "  stage: build\n"
      "  tags: [cts1]\n"
      "  script: [benchpark setup saxpy/openmp cts1 ws, ramble workspace setup]\n"
      "bench-cts1:\n"
      "  stage: bench\n"
      "  tags: [cts1]\n"
      "  script: [ramble on]\n"
      "bench-ats2:\n"
      "  stage: bench\n"
      "  tags: [ats2, cuda]\n"
      "  script: [ramble on]\n"
      "analyze:\n"
      "  stage: analyze\n"
      "  tags: [cts1]\n"
      "  script: [ramble workspace analyze]\n"));

  // --- job actions drive the real Benchpark workflow --------------------
  core::Driver driver;
  support::TempDir tmp("benchpark-ci");
  analysis::MetricsDb metrics;

  auto bench_action = [&](const std::string& system,
                          const std::string& variant) {
    return [&, system, variant](const ci::JobContext& ctx) {
      auto report = driver.run_workflow(
          {"saxpy", variant}, system,
          tmp.path() / ctx.job_name);
      for (const auto& result : report.results) {
        for (const auto& fom : result.foms) {
          if (!fom.numeric) continue;
          analysis::ResultRow row;
          row.benchmark = "saxpy";
          row.system = system;
          row.experiment = result.name;
          row.fom_name = fom.name;
          row.value = fom.value;
          row.units = fom.units;
          row.success = result.success;
          metrics.insert(row);
        }
      }
      bool ok = report.num_success() == report.results.size();
      return ci::JobOutcome{
          ok, std::to_string(report.num_success()) + "/" +
                  std::to_string(report.results.size()) +
                  " experiments succeeded (as " + ctx.identity.login + ")"};
    };
  };
  engine.set_default_action(
      [](const ci::JobContext&) { return ci::JobOutcome{true, "ok"}; });
  engine.set_action("bench-cts1", bench_action("cts1", "openmp"));
  engine.set_action("bench-ats2", bench_action("ats2", "cuda"));

  // Student has no LLNL account: Jacamar downs-copes to the approver.
  auto result = engine.run(pipeline, "headsha", "student", "site-admin");

  auto last_line = [](const std::string& log) {
    auto trimmed = log;
    while (!trimmed.empty() && trimmed.back() == '\n') trimmed.pop_back();
    auto pos = trimmed.rfind('\n');
    return pos == std::string::npos ? trimmed : trimmed.substr(pos + 1);
  };

  std::cout << "== pipeline result ==\n";
  for (const auto& job : result.jobs) {
    std::printf("  %-12s %-8s runner=%-13s ran_as=%-11s %s\n",
                job.name.c_str(),
                job.status == ci::JobStatus::success ? "success" : "failed",
                job.runner_id.c_str(), job.ran_as.c_str(),
                last_line(job.log).c_str());
    // Stream each job's status back to the GitHub PR through Hubcast.
    hubcast.report_status(
        pr, {"gitlab-ci/llnl/" + job.name,
             job.status == ci::JobStatus::success ? ci::CheckState::success
                                                  : ci::CheckState::failure,
             job.log.substr(0, 60)});
  }

  std::cout << "\n== status checks on the GitHub PR ==\n";
  for (const auto& check : github.pr(pr).checks) {
    std::printf("  [%s] %s — %s\n",
                std::string(ci::check_state_name(check.state)).c_str(),
                check.name.c_str(), check.description.c_str());
  }

  std::cout << "\n== jacamar audit log (llnl cts1 runner) ==\n";
  for (const auto& entry : llnl_cts1->audit_log()) {
    std::printf("  job=%s triggered_by=%s ran_as=%s uid=%d%s\n",
                entry.job.c_str(), entry.triggered_by.c_str(),
                entry.ran_as.c_str(), entry.uid,
                entry.downscoped ? " (downscoped to approver)" : "");
  }

  std::cout << "\n== metrics database ==\n"
            << metrics.to_table({.fom_name = "gflops"}).render();

  std::cout << "\npipeline " << (result.success ? "PASSED" : "FAILED")
            << "; results live in the metrics DB keyed by system.\n";
  return result.success ? 0 : 1;
}
