// Continuous benchmarking over time — the paper's core motivation:
// "once the system has been accepted and is in service, benchmarking is
// a useful tool for tracking system performance over time and diagnosing
// hardware failures" (Section 1), with results feeding the Section 5
// dashboard.
//
// This example simulates three weeks of nightly CI benchmarking of the
// osu-bcast collective benchmark on cts1. After day 14 a (simulated)
// fabric firmware regression doubles the interconnect latency. The
// nightly FOMs stream into the metrics database; run_analysis's
// regression detector flags the change the first night it appears.
#include <cstdio>
#include <iostream>

#include "src/analysis/analysis.hpp"
#include "src/analysis/fom.hpp"
#include "src/ramble/application.hpp"
#include "src/runtime/simexec.hpp"
#include "src/support/string_util.hpp"
#include "src/system/system.hpp"

int main() {
  using namespace benchpark;

  analysis::MetricsDb db;
  auto cts1 = system::make_cts1();

  // The nightly job: 256-rank broadcast benchmark, elapsed time FOM.
  analysis::FomSpec nightly_fom{"bcast_total",
                                R"(# total modeled time: ([0-9.eE+-]+) s)",
                                "t", "s"};

  std::cout << "== nightly osu-bcast on cts1, 21 days ==\n";
  bool alerted_on_day15 = false;
  for (int day = 1; day <= 21; ++day) {
    if (day == 15) {
      // The injected fault: a firmware upgrade regresses fabric latency.
      cts1.interconnect.latency_us *= 2.0;
      std::cout << "  (day 15: fabric firmware upgraded overnight)\n";
    }
    runtime::RunParams params;
    params.app = "osu-bcast";
    params.n = 1 << 16;
    params.n_nodes = 8;
    params.n_ranks = 256;
    params.repetition = static_cast<std::uint64_t>(day);  // fresh noise
    auto outcome = runtime::run_simulated(cts1, params);
    // The harness stores the summary FOM; osu output carries the table.
    outcome.output += "# total modeled time: " +
                      support::format_double(outcome.elapsed_seconds, 6) +
                      " s\n";
    auto fom = analysis::extract_fom(nightly_fom, outcome.output);

    analysis::ResultRow row;
    row.benchmark = "osu-bcast";
    row.system = "cts1";
    row.experiment = "nightly_day" + std::to_string(day);
    row.fom_name = "bcast_total";
    row.value = fom ? fom->value : 0;
    row.units = "s";
    row.success = outcome.success;
    db.insert(row);

    // Continuous evaluation: scan after every insert, like a CI gate.
    analysis::AnalysisRequest scan;
    scan.metrics = &db;
    scan.foms = {"bcast_total"};
    scan.detector.warmup = 4;
    scan.detector.threshold = 3.0;
    auto analyzed = analysis::run_analysis(scan);
    const analysis::SeriesReport* series =
        analyzed.series.empty() ? nullptr : &analyzed.series.front();
    if (series && series->has_latest &&
        series->latest.verdict == analysis::Verdict::regression) {
      alerted_on_day15 |= (day == 15);
      std::printf(
          "  day %2d: value=%.4fs  ** ALERT: %.4f -> %.4f (%.1f sigma)\n",
          day, row.value, series->latest.baseline_median,
          series->latest.value, series->latest.score);
      if (day == 15) {
        std::cout << "\nThe regression is flagged the first night it "
                     "appears — diagnosing\nhardware/firmware failures "
                     "from the benchmark record, as Section 1\nmotivates."
                  << "\n\n";
      }
    } else {
      std::printf("  day %2d: value=%.4fs  ok\n", day, row.value);
    }
  }

  analysis::AnalysisRequest report;
  report.metrics = &db;
  report.foms = {"bcast_total"};
  report.detector.warmup = 4;
  report.detector.threshold = 3.0;
  report.render_text = true;
  std::cout << "\n" << analysis::run_analysis(report).text;
  // The gate: the fault must have been flagged the night it appeared.
  return alerted_on_day15 ? 0 : 1;
}
