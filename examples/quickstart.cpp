// Quickstart: the paper's Figure 1 end to end.
//
//   $ ./build/examples/quickstart
//
// Walks the nine-step user workflow of Figure 1c — clone Benchpark, run
// the driver with a system profile and benchmark suite template,
// generate the workspace, build through Spack, render batch scripts,
// execute through the scheduler, and analyze figures of merit — for the
// saxpy/openmp experiment on the cts1 system, printing the Figure 1a
// repository tree and the final FOM table along the way.
#include <cstdio>
#include <iostream>

#include "src/core/driver.hpp"
#include "src/support/fs_util.hpp"
#include "src/yaml/emitter.hpp"

int main() {
  using namespace benchpark;

  core::Driver driver;

  std::cout << "== Benchpark repository (Figure 1a) ==\n"
            << driver.repo_tree() << "\n";

  std::cout << "== Available experiments ==\n";
  for (const auto& benchmark : driver.benchmarks()) {
    std::cout << "  " << benchmark << ": ";
    for (const auto& variant : driver.variants(benchmark)) {
      std::cout << variant << " ";
    }
    std::cout << "\n";
  }
  std::cout << "== Available systems ==\n  ";
  for (const auto& system : driver.systems()) std::cout << system << " ";
  std::cout << "\n\n== Workflow (Figure 1c): saxpy/openmp on cts1 ==\n";

  support::TempDir tmp("benchpark-quickstart");
  ramble::Workspace workspace =
      driver.setup({"saxpy", "openmp"}, "cts1", tmp.path() / "workspace");
  auto report = driver.run_workflow(
      {"saxpy", "openmp"}, "cts1", tmp.path() / "workspace2",
      [](int step, const std::string& text) {
        std::printf("  step %d: %s\n", step, text.c_str());
      },
      &workspace);

  std::cout << "\n== Generated workspace tree ==\n"
            << support::render_tree(workspace.root() / "configs") << "\n";

  std::cout << "== One rendered batch script (Figure 13 instantiated) ==\n"
            << workspace.prepared().front().script << "\n";

  std::cout << "== ramble workspace analyze (Figure 8 FOMs) ==\n"
            << report.to_table().render() << "\n";

  std::cout << "== Reproducibility artifact: saxpy environment lockfile ==\n"
            << support::read_file(workspace.root() / "software" /
                                  "saxpy.lock.yaml")
                   .substr(0, 600)
            << "...\n";
  return report.num_success() == report.results.size() ? 0 : 1;
}
