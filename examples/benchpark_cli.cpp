// The Benchpark driver executable (Figure 1a line 1-3, Figure 1c step 2:
// ">/bin/benchpark $experiment $system $workspace_dir").
//
// Commands:
//   benchpark_cli list                      experiments and systems
//   benchpark_cli tree                      the Figure 1a repository tree
//   benchpark_cli table1                    the Table 1 component matrix
//   benchpark_cli setup <exp> <sys> <dir>   generate a workspace
//   benchpark_cli run <exp> <sys> <dir>     full workflow + FOM table
//   benchpark_cli usage                     benchmark usage metrics
//
// <exp> is "<benchmark>/<variant>", e.g. saxpy/openmp or amg2023/cuda.
#include <cstdio>
#include <iostream>

#include "src/core/components.hpp"
#include "src/core/driver.hpp"
#include "src/core/usage.hpp"
#include "src/support/error.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list | tree | table1 | usage\n"
               "       %s setup <benchmark/variant> <system> <workspace>\n"
               "       %s run   <benchmark/variant> <system> <workspace>\n",
               argv0, argv0, argv0);
  return 2;
}

void list_all(const benchpark::core::Driver& driver) {
  std::cout << "experiments:\n";
  for (const auto& benchmark : driver.benchmarks()) {
    for (const auto& variant : driver.variants(benchmark)) {
      std::cout << "  " << benchmark << "/" << variant << "\n";
    }
  }
  std::cout << "systems:\n";
  for (const auto& system : driver.systems()) {
    std::cout << "  " << system << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  benchpark::core::Driver driver;
  try {
    if (command == "list") {
      list_all(driver);
      return 0;
    }
    if (command == "tree") {
      std::cout << driver.repo_tree();
      return 0;
    }
    if (command == "table1") {
      std::cout << benchpark::core::render_table1().render();
      return 0;
    }
    if (command == "usage") {
      std::cout << benchpark::core::UsageMetrics::instance()
                       .to_table()
                       .render();
      return 0;
    }
    if (command == "setup" || command == "run") {
      if (argc != 5) return usage(argv[0]);
      auto id = benchpark::core::ExperimentId::parse(argv[2]);
      if (command == "setup") {
        auto ws = driver.setup(id, argv[3], argv[4]);
        std::cout << "workspace generated at " << ws.root().string()
                  << "\nnext: ramble workspace setup && ramble on && "
                     "ramble workspace analyze\n";
        return 0;
      }
      auto report = driver.run_workflow(
          id, argv[3], argv[4], [](int step, const std::string& text) {
            std::printf("step %d: %s\n", step, text.c_str());
          });
      std::cout << report.to_table().render();
      return report.num_success() == report.results.size() ? 0 : 1;
    }
    return usage(argv[0]);
  } catch (const benchpark::Error& e) {
    std::fprintf(stderr, "benchpark: error: %s\n", e.what());
    return 1;
  }
}
