// The Benchpark driver executable (Figure 1a line 1-3, Figure 1c step 2:
// ">/bin/benchpark $experiment $system $workspace_dir").
//
// Commands:
//   benchpark_cli list                      experiments and systems
//   benchpark_cli tree                      the Figure 1a repository tree
//   benchpark_cli table1                    the Table 1 component matrix
//   benchpark_cli setup <exp> <sys> <dir>   generate a workspace
//   benchpark_cli run <exp> <sys> <dir>     full workflow + FOM table
//   benchpark_cli analyze <outdir> [...]    historical regression report
//   benchpark_cli usage                     benchmark usage metrics
//
// <exp> is "<benchmark>/<variant>", e.g. saxpy/openmp or amg2023/cuda.
//
// `analyze` reads the FOM history from the BENCHPARK_STORE_DIR store,
// runs change-point detection + bisection attribution, writes
// report.json and report.html under <outdir>, prints the text report,
// and exits 3 when any series is currently regressed (the CI gate).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "src/analysis/analysis.hpp"
#include "src/core/components.hpp"
#include "src/core/driver.hpp"
#include "src/core/usage.hpp"
#include "src/store/store.hpp"
#include "src/support/error.hpp"
#include "src/support/fs_util.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s list | tree | table1 | usage\n"
      "       %s setup <benchmark/variant> <system> <workspace>\n"
      "       %s run   <benchmark/variant> <system> <workspace>\n"
      "       %s analyze <outdir> [--fom <name>] [--warmup <n>]\n"
      "                  [--threshold <sigmas>] [--benchmark <b>]\n"
      "                  [--system <s>]   (store: BENCHPARK_STORE_DIR)\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

void list_all(const benchpark::core::Driver& driver) {
  std::cout << "experiments:\n";
  for (const auto& benchmark : driver.benchmarks()) {
    for (const auto& variant : driver.variants(benchmark)) {
      std::cout << "  " << benchmark << "/" << variant << "\n";
    }
  }
  std::cout << "systems:\n";
  for (const auto& system : driver.systems()) {
    std::cout << "  " << system << "\n";
  }
}

int analyze_history(int argc, char** argv) {
  namespace analysis = benchpark::analysis;
  if (argc < 3) return usage(argv[0]);
  const std::filesystem::path outdir = argv[2];

  analysis::AnalysisRequest request;
  request.store = benchpark::store::Store::open_from_env();
  if (!request.store) {
    std::fprintf(stderr,
                 "benchpark: analyze needs BENCHPARK_STORE_DIR to point at "
                 "a persistent store\n");
    return 2;
  }
  request.render_text = true;
  request.render_html = true;
  request.render_json = true;
  for (int i = 3; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = argv[i + 1];
    if (flag == "--fom") {
      request.foms.push_back(value);
    } else if (flag == "--warmup") {
      request.detector.warmup =
          static_cast<std::size_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (flag == "--threshold") {
      request.detector.threshold = std::strtod(value.c_str(), nullptr);
    } else if (flag == "--benchmark") {
      request.benchmark = value;
    } else if (flag == "--system") {
      request.system = value;
    } else {
      return usage(argv[0]);
    }
  }
  // Rates get the opposite alarm direction from times.
  request.higher_is_worse_overrides["gflops"] = false;
  request.higher_is_worse_overrides["bw"] = false;
  request.higher_is_worse_overrides["gups"] = false;
  request.higher_is_worse_overrides["beff"] = false;
  request.higher_is_worse_overrides["triad"] = false;
  request.higher_is_worse_overrides["copy"] = false;

  auto result = analysis::run_analysis(request);
  std::filesystem::create_directories(outdir);
  benchpark::support::write_file(outdir / "report.json", result.json);
  benchpark::support::write_file(outdir / "report.html", result.html);
  std::cout << result.text;
  std::cout << "\nreports: " << (outdir / "report.json").string() << ", "
            << (outdir / "report.html").string() << "\n";
  return result.regressed_series() > 0 ? 3 : 0;
}

/// A bad <benchmark/variant> or <system> is a usage error, not a crash:
/// show everything that would have worked, then exit 2 so scripts can
/// tell "you typo'd" from "the experiment failed".
int reject_with_registry(const benchpark::core::Driver& driver,
                         const std::string& what) {
  std::fprintf(stderr, "benchpark: error: %s\n", what.c_str());
  std::fprintf(stderr, "available experiments:\n");
  for (const auto& benchmark : driver.benchmarks()) {
    for (const auto& variant : driver.variants(benchmark)) {
      std::fprintf(stderr, "  %s/%s\n", benchmark.c_str(), variant.c_str());
    }
  }
  std::fprintf(stderr, "available systems:\n");
  for (const auto& system : driver.systems()) {
    std::fprintf(stderr, "  %s\n", system.c_str());
  }
  return 2;
}

/// Validate an experiment id + system against the driver's registries.
/// Returns 0 when valid, otherwise prints the registry dump and
/// returns the exit code for main to propagate.
int validate_run_args(const benchpark::core::Driver& driver,
                      const benchpark::core::ExperimentId& id,
                      const std::string& system) {
  const auto benchmarks = driver.benchmarks();
  if (std::find(benchmarks.begin(), benchmarks.end(), id.benchmark) ==
      benchmarks.end()) {
    return reject_with_registry(driver,
                                "unknown benchmark '" + id.benchmark + "'");
  }
  const auto variants = driver.variants(id.benchmark);
  if (std::find(variants.begin(), variants.end(), id.variant) ==
      variants.end()) {
    return reject_with_registry(driver, "benchmark '" + id.benchmark +
                                            "' has no variant '" +
                                            id.variant + "'");
  }
  const auto systems = driver.systems();
  if (std::find(systems.begin(), systems.end(), system) == systems.end()) {
    return reject_with_registry(driver, "unknown system '" + system + "'");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];
  benchpark::core::Driver driver;
  try {
    if (command == "list") {
      list_all(driver);
      return 0;
    }
    if (command == "tree") {
      std::cout << driver.repo_tree();
      return 0;
    }
    if (command == "table1") {
      std::cout << benchpark::core::render_table1().render();
      return 0;
    }
    if (command == "usage") {
      std::cout << benchpark::core::UsageMetrics::instance()
                       .to_table()
                       .render();
      return 0;
    }
    if (command == "analyze") {
      return analyze_history(argc, argv);
    }
    if (command == "setup" || command == "run") {
      if (argc != 5) return usage(argv[0]);
      auto id = benchpark::core::ExperimentId::parse(argv[2]);
      if (int rc = validate_run_args(driver, id, argv[3]); rc != 0) {
        return rc;
      }
      if (command == "setup") {
        auto ws = driver.setup(id, argv[3], argv[4]);
        std::cout << "workspace generated at " << ws.root().string()
                  << "\nnext: ramble workspace setup && ramble on && "
                     "ramble workspace analyze\n";
        return 0;
      }
      auto report = driver.run_workflow(
          id, argv[3], argv[4], [](int step, const std::string& text) {
            std::printf("step %d: %s\n", step, text.c_str());
          });
      std::cout << report.to_table().render();
      return report.num_success() == report.results.size() ? 0 : 1;
    }
    return usage(argv[0]);
  } catch (const benchpark::Error& e) {
    std::fprintf(stderr, "benchpark: error: %s\n", e.what());
    return 1;
  }
}
