// Adding a new benchmark to Benchpark (Section 4): "a full specification
// of the benchmark, its build, and its run instructions for at least one
// platform is required."
//
// This example contributes a ping-pong latency microbenchmark end to end:
//   1. package.py   -> a PackageRecipe in an overlay repo (Figure 11)
//   2. application.py -> an ApplicationDefinition (Figure 8)
//   3. a simulation model for the modeled systems
//   4. an experiment template (ramble.yaml, Figure 10)
// and then runs it on cts1 and ats4 without touching any framework code.
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/core/driver.hpp"
#include "src/pkg/repo.hpp"
#include "src/ramble/application.hpp"
#include "src/runtime/simexec.hpp"
#include "src/support/fs_util.hpp"
#include "src/support/string_util.hpp"
#include "src/system/perf_model.hpp"
#include "src/yaml/parser.hpp"

int main() {
  using namespace benchpark;

  // ---- 1. the build half: package.py ------------------------------------
  pkg::PackageRecipe pingpong("pingpong", pkg::BuildSystem::cmake);
  pingpong.describe("MPI ping-pong point-to-point latency benchmark")
      .version("2.1", /*preferred=*/true)
      .variant("openmp", false, "threaded variant")
      .flag_when("openmp", "-DPINGPONG_OPENMP=ON")
      .depends_on("mpi")
      .depends_on("cmake")
      .build_cost(3.0);
  auto overlay = std::make_shared<pkg::Repo>("community-repo");
  overlay->add(std::move(pingpong));
  std::cout << "1. package.py registered in overlay repo 'community-repo'\n";

  // ---- 2. the run half: application.py ---------------------------------
  ramble::ApplicationDefinition app("pingpong");
  app.executable("pp", "pingpong -m {n}", /*use_mpi=*/true)
      .workload("latency", {"pp"})
      .workload_variable("n", "8", "message size in bytes", {"latency"})
      .figure_of_merit("latency_us", R"(latency: ([0-9.eE+-]+) us)", "lat",
                       "us")
      .success_criteria("pass", "pingpong done");
  ramble::ApplicationRegistry::instance().add(std::move(app));
  std::cout << "2. application.py registered (executables, FOMs, success)\n";

  // ---- 3. a model for the simulated systems ------------------------------
  runtime::register_sim_model(
      "pingpong",
      [](const system::SystemDescription& system,
         const runtime::RunParams& params) {
        system::PerfModel model(system);
        double rtt = 2.0 * model.p2p_seconds(params.n);
        runtime::RunOutcome outcome;
        outcome.success = true;
        outcome.elapsed_seconds = rtt * 1000;  // 1000 iterations
        outcome.output =
            "# ping-pong between rank 0 and rank 1\n"
            "latency: " + support::format_double(rtt / 2 * 1e6, 5) +
            " us\npingpong done\n";
        return outcome;
      });
  std::cout << "3. simulation model registered\n";

  // ---- 4. the experiment: ramble.yaml ------------------------------------
  core::Driver driver;
  driver.add_experiment(
      {"pingpong", "latency"},
      yaml::parse("ramble:\n"
                  "  applications:\n"
                  "    pingpong:\n"
                  "      workloads:\n"
                  "        latency:\n"
                  "          variables:\n"
                  "            n_ranks: '2'\n"
                  "            processes_per_node: '1'\n"
                  "            n_nodes: '2'\n"
                  "          experiments:\n"
                  "            pingpong_{n}:\n"
                  "              variables:\n"
                  "                n: ['8', '1024', '1048576']\n"
                  "  spack:\n"
                  "    packages:\n"
                  "      pingpong:\n"
                  "        spack_spec: pingpong@2.1\n"
                  "        compiler: default-compiler\n"
                  "    environments:\n"
                  "      pingpong:\n"
                  "        packages:\n"
                  "        - default-mpi\n"
                  "        - pingpong\n"));
  std::cout << "4. experiment template registered\n\n";

  // The overlay repo shadows the builtin one (the `repo/` directory of
  // Figure 1a): workspaces consult it through set_repo_stack.
  pkg::RepoStack stack;
  stack.push_back(pkg::builtin_repo());
  stack.push_front(overlay);
  std::cout << "overlay lookup: pingpong@"
            << stack.get("pingpong").best_version({})->str() << " ("
            << stack.get("pingpong").description() << ")\n\n";

  // ---- run it on two of the paper's systems ------------------------------
  support::TempDir tmp("benchpark-add");
  for (const char* system_name : {"cts1", "ats4"}) {
    const auto& system =
        system::SystemRegistry::instance().get(system_name);
    std::cout << "== pingpong on " << system_name << " ("
              << system.interconnect.name << ") ==\n";
    auto ws = driver.setup({"pingpong", "latency"}, system_name,
                           tmp.path() / system_name);
    ws.set_repo_stack(stack);  // expose the community recipe
    ws.setup();
    ws.run();
    auto report = ws.analyze();
    for (const auto& result : report.results) {
      const auto* latency = result.fom("latency_us");
      std::printf("  %-20s %s  latency=%s us\n", result.name.c_str(),
                  result.success ? "ok" : "FAILED",
                  latency ? latency->raw.c_str() : "?");
    }
  }

  std::cout << "\nThe same four artifacts (recipe, application, model,\n"
               "experiment) are all a community contribution needs — the\n"
               "Table 1 separation keeps each in its own file.\n";
  return 0;
}
