// The Section 7.1 story: "we moved a few simple benchmark kernels between
// an on-premise supercomputer and cloud instances of similar architecture
// ... the microbenchmark was executing correctly on one system but
// crashing on the other ... the root cause, i.e., a bug in the underlying
// math library related to a specific hardware feature (which was missing
// in the cloud), was identified within days."
//
// With Benchpark the same comparison is one campaign: the exact same
// experiment specification runs on cts1 and its cloud twin, the crash
// shows up in the comparison table, the kernel-only benchmark (no math
// library) passes on both — isolating the library — and the archspec
// feature diff names the missing hardware feature in minutes, not days.
#include <cstdio>
#include <iostream>

#include "src/archspec/microarch.hpp"
#include "src/core/campaign.hpp"
#include "src/core/driver.hpp"
#include "src/support/fs_util.hpp"
#include "src/system/system.hpp"

int main() {
  using namespace benchpark;

  core::Driver driver;
  support::TempDir tmp("benchpark-cloud");

  std::cout
      << "== Competitive benchmarking: on-prem cts1 vs cloud twin ==\n\n";

  // Step 1: the full application benchmark (links the vendor math lib).
  core::Campaign amg(&driver, {"amg2023", "openmp"}, tmp.path() / "amg");
  amg.add_system("cts1");
  amg.add_system("cloud-cts");
  amg.run();
  std::cout << "amg2023 (uses vendor math library):\n"
            << amg.comparison_table("solve_time").render();
  for (const auto& summary : amg.summaries()) {
    std::printf("  %-10s %zu/%zu succeeded%s%s\n", summary.system.c_str(),
                summary.succeeded, summary.experiments,
                summary.first_failure.empty() ? "" : " — ",
                summary.first_failure.c_str());
  }

  // Step 2: the microbenchmark (kernel only, no math library).
  core::Campaign saxpy(&driver, {"saxpy", "openmp"}, tmp.path() / "saxpy");
  saxpy.add_system("cts1");
  saxpy.add_system("cloud-cts");
  saxpy.run();
  std::cout << "\nsaxpy (kernel only):\n"
            << saxpy.comparison_table("elapsed").render();
  for (const auto& summary : saxpy.summaries()) {
    std::printf("  %-10s %zu/%zu succeeded\n", summary.system.c_str(),
                summary.succeeded, summary.experiments);
  }

  // Step 3: the diagnosis. saxpy passes everywhere, amg2023 crashes only
  // on the cloud -> the difference is in the library stack, not the
  // kernels. Diff the hardware feature sets archspec reports.
  std::cout << "\n== Diagnosis ==\n"
               "saxpy passes on both systems; amg2023 crashes only in the\n"
               "cloud -> suspect the library stack, not the benchmark.\n\n";

  const auto& cts1 = system::SystemRegistry::instance().get("cts1");
  const auto& cloud = system::SystemRegistry::instance().get("cloud-cts");
  const auto& march =
      archspec::MicroarchDatabase::instance().get(cts1.cpu.microarch);
  std::cout << "archspec: both systems report '" << cts1.cpu.microarch
            << "' (" << march.vendor() << "), but the cloud instance "
            << "disables:\n";
  for (const auto& feature : cloud.disabled_features) {
    std::cout << "    - " << feature
              << (march.has_feature(feature)
                      ? "   <- expected on " + cts1.cpu.microarch
                      : "")
              << "\n";
  }

  std::cout
      << "\nRoot cause: the vendor math library selects an optimized code\n"
         "path using '"
      << *cloud.disabled_features.begin()
      << "', which the virtualized cloud CPUs do not expose. The paper\n"
         "reports this took days of cross-organization debugging; with\n"
         "the reproducible campaign above it falls out of one run.\n";

  bool expected = amg.summaries()[0].succeeded > 0 &&
                  amg.summaries()[1].succeeded == 0 &&
                  saxpy.summaries()[1].succeeded ==
                      saxpy.summaries()[1].experiments;
  return expected ? 0 : 1;
}
